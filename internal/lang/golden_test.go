package lang

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
)

// runFile executes one shipped .sdl example end to end and returns the
// final store.
func runFile(t *testing.T, path string) *dataspace.Store {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := dataspace.New()
	rt := process.NewRuntime(txn.New(s, txn.Coarse), nil)
	t.Cleanup(func() {
		rt.Shutdown()
		rt.Consensus().Close()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := LoadAndRun(ctx, rt, string(src)); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return s
}

func countLead(s *dataspace.Store, arity int, lead tuple.Value) int {
	n := 0
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(arity, lead, true, func(tuple.ID, tuple.Tuple) bool {
			n++
			return true
		})
	})
	return n
}

// Golden outcomes for every shipped example program.

func TestGoldenSum3(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "sum3.sdl"))
	if s.Len() != 1 {
		t.Fatalf("tuples left = %d", s.Len())
	}
	var sum int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			sum, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	if sum != 360 {
		t.Errorf("sum = %d, want 360", sum)
	}
}

func TestGoldenProplist(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "proplist.sdl"))
	found := map[string]int64{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			tp := inst.Tuple
			if tp.Arity() != 3 {
				return true
			}
			tag, _ := tp.Field(0).AsAtom()
			if tag == "result" || tag == "found_fast" {
				prop, _ := tp.Field(1).AsAtom()
				v, _ := tp.Field(2).AsInt()
				found[tag+"/"+prop] = v
			}
			return true
		})
	})
	if found["result/weight"] != 99 {
		t.Errorf("Search result = %v", found)
	}
	if found["found_fast/size"] != 42 {
		t.Errorf("Find result = %v", found)
	}
}

func TestGoldenBarrier(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "barrier.sdl"))
	if got := countLead(s, 2, tuple.Atom("passed")); got != 3 {
		t.Errorf("passed tuples = %d, want 3", got)
	}
	// Every worker left its ready marker (the consensus reads, not
	// retracts, them).
	if got := countLead(s, 2, tuple.Atom("ready")); got != 3 {
		t.Errorf("ready tuples = %d, want 3", got)
	}
}

func TestGoldenPairing(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "pairing.sdl"))
	if got := countLead(s, 2, tuple.Atom("paired")); got != 3 {
		t.Errorf("paired = %d, want 3", got)
	}
	if got := countLead(s, 2, tuple.Atom("index")); got != 0 {
		t.Errorf("index left = %d, want 0", got)
	}
}

func TestGoldenSum1(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "sum1.sdl"))
	if s.Len() != 1 {
		t.Fatalf("tuples left = %d", s.Len())
	}
	var k, sum int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			k, _ = inst.Tuple.Field(0).AsInt()
			sum, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	if k != 8 || sum != 36 {
		t.Errorf("result = <%d, %d>, want <8, 36>", k, sum)
	}
}

func TestGoldenSort(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "sort.sdl"))
	vals := map[int64]int64{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			if inst.Tuple.Arity() == 4 {
				id, _ := inst.Tuple.Field(0).AsInt()
				v, _ := inst.Tuple.Field(2).AsInt()
				vals[id] = v
			}
			return true
		})
	})
	if len(vals) != 4 {
		t.Fatalf("nodes = %d", len(vals))
	}
	for i := int64(1); i < 4; i++ {
		if vals[i] > vals[i+1] {
			t.Errorf("not sorted: %v", vals)
		}
	}
}

func TestGoldenPhilosophers(t *testing.T) {
	s := runFile(t, filepath.Join("..", "..", "examples", "sdl", "philosophers.sdl"))
	meals := map[int64]int{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, tuple.Atom("meal"), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			id, _ := tp.Field(1).AsInt()
			meals[id]++
			return true
		})
	})
	if len(meals) != 5 {
		t.Fatalf("philosophers who ate = %d, want 5", len(meals))
	}
	for id, n := range meals {
		if n != 3 {
			t.Errorf("philosopher %d ate %d times, want 3", id, n)
		}
	}
	// All five forks are back on the table.
	if got := countLead(s, 2, tuple.Atom("fork")); got != 5 {
		t.Errorf("forks = %d, want 5", got)
	}
}
