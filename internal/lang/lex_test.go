package lang

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]TokKind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func eqKinds(a, b []TokKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, `process Sum(k) behavior -> <k, 1> end`)
	want := []TokKind{
		TokProcess, TokIdent, TokLParen, TokIdent, TokRParen,
		TokBehavior, TokArrow, TokLT, TokIdent, TokComma, TokInt, TokGT,
		TokEnd, TokEOF,
	}
	if !eqKinds(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, `-> => @> == != <= >= < > = ! + - * / % | ; : , ( ) { }`)
	want := []TokKind{
		TokArrow, TokDblArrow, TokConsArrow, TokEQ, TokNE, TokLE, TokGE,
		TokLT, TokGT, TokAssign, TokBang, TokPlus, TokMinus, TokStar,
		TokSlash, TokPercent, TokPipe, TokSemicolon, TokColon, TokComma,
		TokLParen, TokRParen, TokLBrace, TokRBrace, TokEOF,
	}
	if !eqKinds(got, want) {
		t.Errorf("kinds = %v, want %v", got, want)
	}
}

func TestLexNumbersAndStrings(t *testing.T) {
	toks, err := Lex(`42 1.5 "hi\n" "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 42 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Flt != 1.5 {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokString || toks[2].Text != "hi\n" {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokString || toks[3].Text != `a"b` {
		t.Errorf("tok3 = %+v", toks[3])
	}
}

func TestLexVariables(t *testing.T) {
	toks, err := Lex(`?alpha ?b1`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokVar || toks[0].Text != "alpha" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokVar || toks[1].Text != "b1" {
		t.Errorf("tok1 = %+v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, "a // comment here\nb")
	want := []TokKind{TokIdent, TokIdent, TokEOF}
	if !eqKinds(got, want) {
		t.Errorf("kinds = %v", got)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`? 1`,
		`@x`,
		`1.2.3`,
		"#",
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error lacks position: %v", err)
		}
	}
}

func TestLexIntFollowedByDotMethodLike(t *testing.T) {
	// "1." without digit after the dot: the int ends, the '.' errors.
	if _, err := Lex("1. 2"); err == nil {
		t.Skip("1. tolerated")
	}
}
