// Package lang implements a textual front-end for SDL: a lexer, parser,
// and compiler that translate SDL source programs (an ASCII
// transliteration of the paper's notation) into the process runtime's
// definitions.
//
// Surface syntax overview:
//
//	// Sum3 from the paper, §3.1
//	process Sum3()
//	behavior
//	  par {
//	    exists n, m, a, b: <?n, ?a>!, <?m, ?b>! where ?n != ?m
//	      -> <?m, ?a + ?b>
//	  }
//	end
//
//	main
//	  -> <1, 10>, <2, 20>, <3, 30>, spawn Sum3()
//	end
//
// Notation:
//
//   - tuples: <f1, f2, …>; '*' is a wildcard field; '?x' a quantified
//     variable; a '!' suffix tags the pattern for retraction; 'not <…>'
//     negates it. Bare identifiers are atoms unless they name a process
//     parameter or let-constant (then they denote its value).
//   - transaction tags: '->' immediate, '=>' delayed, '@>' consensus.
//   - a transaction is `query tag actions`: the query is a pattern list
//     with an optional `where` predicate (or a bare predicate), the
//     actions are tuples to assert plus let/spawn/exit/abort/skip.
//   - constructs: sel { b1 | b2 | … } (selection), rep { … } (repetition),
//     par { … } (replication); branches are `guard ; stmt ; …`.
//   - a `process Name(params) [import rules] [export rules] behavior …
//     end` defines a process type; `main … end` is the initial process.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokVar    // ?ident
	TokInt    // 123
	TokFloat  // 1.5
	TokString // "..."
	TokLT     // <
	TokGT     // >
	TokLE     // <=
	TokGE     // >=
	TokEQ     // ==
	TokNE     // !=
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokComma
	TokSemicolon
	TokColon
	TokBang // !
	TokPipe // |
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokArrow     // ->
	TokDblArrow  // =>
	TokConsArrow // @>
	// Keywords.
	TokProcess
	TokImport
	TokExport
	TokBehavior
	TokMain
	TokEnd
	TokSel
	TokRep
	TokPar
	TokExists
	TokForall
	TokNot
	TokAnd
	TokOr
	TokWhere
	TokLet
	TokSpawn
	TokExit
	TokAbort
	TokSkip
	TokTrue
	TokFalse
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokVar: "variable",
	TokInt: "int", TokFloat: "float", TokString: "string",
	TokLT: "<", TokGT: ">", TokLE: "<=", TokGE: ">=",
	TokEQ: "==", TokNE: "!=", TokAssign: "=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokComma: ",", TokSemicolon: ";", TokColon: ":", TokBang: "!",
	TokPipe: "|", TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokArrow: "->", TokDblArrow: "=>", TokConsArrow: "@>",
	TokProcess: "process", TokImport: "import", TokExport: "export",
	TokBehavior: "behavior", TokMain: "main", TokEnd: "end",
	TokSel: "sel", TokRep: "rep", TokPar: "par",
	TokExists: "exists", TokForall: "forall",
	TokNot: "not", TokAnd: "and", TokOr: "or", TokWhere: "where",
	TokLet: "let", TokSpawn: "spawn", TokExit: "exit", TokAbort: "abort",
	TokSkip: "skip", TokTrue: "true", TokFalse: "false",
}

// String names the token kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", k)
}

var keywords = map[string]TokKind{
	"process": TokProcess, "import": TokImport, "export": TokExport,
	"behavior": TokBehavior, "main": TokMain, "end": TokEnd,
	"sel": TokSel, "rep": TokRep, "par": TokPar,
	"exists": TokExists, "forall": TokForall,
	"not": TokNot, "and": TokAnd, "or": TokOr, "where": TokWhere,
	"let": TokLet, "spawn": TokSpawn, "exit": TokExit, "abort": TokAbort,
	"skip": TokSkip, "true": TokTrue, "false": TokFalse,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier/variable name, string payload, number text
	Int  int64
	Flt  float64
	Pos  Pos
}

// Error is a positioned language error (lexing, parsing, or compiling).
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
