package lang

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return prog
}

func TestParseProcessHeader(t *testing.T) {
	prog := parseOK(t, `
process Sort(node_id, next_node_id)
import
  <node_id, *, *, *>;
  <next_node_id, *, *, *>
export
  <node_id, *, *, *>
behavior
  -> skip
end
`)
	if len(prog.Processes) != 1 {
		t.Fatalf("processes = %d", len(prog.Processes))
	}
	pd := prog.Processes[0]
	if pd.Name != "Sort" || len(pd.Params) != 2 {
		t.Errorf("decl = %+v", pd)
	}
	if len(pd.Imports) != 2 || len(pd.Exports) != 1 {
		t.Errorf("imports=%d exports=%d", len(pd.Imports), len(pd.Exports))
	}
	if len(pd.Imports[0].Pattern.Fields) != 4 {
		t.Errorf("import pattern arity = %d", len(pd.Imports[0].Pattern.Fields))
	}
}

func TestParseImportWhere(t *testing.T) {
	prog := parseOK(t, `
process P()
import <year, ?a> where ?a <= 87
behavior -> skip end
`)
	rule := prog.Processes[0].Imports[0]
	if rule.Where == nil {
		t.Fatal("where clause missing")
	}
	bin, ok := rule.Where.(*BinNode)
	if !ok || bin.Op != TokLE {
		t.Errorf("where = %#v", rule.Where)
	}
}

func TestParseTxnForms(t *testing.T) {
	prog := parseOK(t, `
main
  exists a: <year, ?a>! where ?a > 87 -> <found, ?a>, let N = ?a;
  <year, 87> => <new_year>;
  forall : <x, ?v> @> exit;
  ?k % 2 == 0 -> skip;
  -> <init, 1>
end
`)
	body := prog.Main.Body
	if len(body) != 5 {
		t.Fatalf("stmts = %d", len(body))
	}
	t0 := body[0].(*TxnNode)
	if t0.Quant != QuantExists || len(t0.DeclVars) != 1 || t0.DeclVars[0] != "a" {
		t.Errorf("t0 quant = %+v", t0)
	}
	if len(t0.Items) != 1 || !t0.Items[0].Retract || t0.Items[0].Negated {
		t.Errorf("t0 items = %+v", t0.Items)
	}
	if t0.Where == nil || t0.Tag != TagImmediate || len(t0.Actions) != 2 {
		t.Errorf("t0 = %+v", t0)
	}
	t1 := body[1].(*TxnNode)
	if t1.Tag != TagDelayed || len(t1.Items) != 1 || t1.Items[0].Retract {
		t.Errorf("t1 = %+v", t1)
	}
	t2 := body[2].(*TxnNode)
	if t2.Quant != QuantForall || t2.Tag != TagConsensus {
		t.Errorf("t2 = %+v", t2)
	}
	if len(t2.Actions) != 1 {
		t.Errorf("t2 actions = %+v", t2.Actions)
	}
	t3 := body[3].(*TxnNode)
	if len(t3.Items) != 0 || t3.Where == nil {
		t.Errorf("t3 (test-only) = %+v", t3)
	}
	t4 := body[4].(*TxnNode)
	if len(t4.Items) != 0 || t4.Where != nil || len(t4.Actions) != 1 {
		t.Errorf("t4 (empty query) = %+v", t4)
	}
}

func TestParseNegatedPattern(t *testing.T) {
	prog := parseOK(t, `main not <index, *> -> exit end`)
	tx := prog.Main.Body[0].(*TxnNode)
	if len(tx.Items) != 1 || !tx.Items[0].Negated {
		t.Errorf("tx = %+v", tx)
	}
}

func TestParseNotExpressionVsNegatedPattern(t *testing.T) {
	// `not` before a non-pattern is a logical negation in a test query.
	prog := parseOK(t, `main not (?x == 1) -> skip end`)
	tx := prog.Main.Body[0].(*TxnNode)
	if len(tx.Items) != 0 || tx.Where == nil {
		t.Fatalf("tx = %+v", tx)
	}
	if _, ok := tx.Where.(*UnNode); !ok {
		t.Errorf("where = %#v", tx.Where)
	}
}

func TestParseConstructs(t *testing.T) {
	prog := parseOK(t, `
main
  sel {
    <a>! -> skip
  | <b>! -> skip ; -> <after_b>
  };
  rep { <c>! -> skip };
  par { <d>! -> skip }
end
`)
	if len(prog.Main.Body) != 3 {
		t.Fatalf("stmts = %d", len(prog.Main.Body))
	}
	sel := prog.Main.Body[0].(*SelNode)
	if len(sel.Branches) != 2 {
		t.Fatalf("branches = %d", len(sel.Branches))
	}
	if len(sel.Branches[1].Body) != 1 {
		t.Errorf("branch body = %d", len(sel.Branches[1].Body))
	}
	if _, ok := prog.Main.Body[1].(*RepNode); !ok {
		t.Error("rep missing")
	}
	if _, ok := prog.Main.Body[2].(*ParNode); !ok {
		t.Error("par missing")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	prog := parseOK(t, `main ?a + 2 * 3 == 7 and not ?b or ?c -> skip end`)
	tx := prog.Main.Body[0].(*TxnNode)
	// ((?a + (2*3)) == 7 and (not ?b)) or ?c
	or, ok := tx.Where.(*BinNode)
	if !ok || or.Op != TokOr {
		t.Fatalf("top = %#v", tx.Where)
	}
	and, ok := or.L.(*BinNode)
	if !ok || and.Op != TokAnd {
		t.Fatalf("or.L = %#v", or.L)
	}
	eq, ok := and.L.(*BinNode)
	if !ok || eq.Op != TokEQ {
		t.Fatalf("and.L = %#v", and.L)
	}
	add, ok := eq.L.(*BinNode)
	if !ok || add.Op != TokPlus {
		t.Fatalf("eq.L = %#v", eq.L)
	}
	mul, ok := add.R.(*BinNode)
	if !ok || mul.Op != TokStar {
		t.Fatalf("add.R = %#v", add.R)
	}
}

func TestParseComputedPatternField(t *testing.T) {
	prog := parseOK(t, `process Sum2(k, j) behavior
  exists a: <k - pow2(j - 1), ?a, j>! => <k, ?a, j + 1>
end`)
	tx := prog.Processes[0].Body[0].(*TxnNode)
	f0, ok := tx.Items[0].Pattern.Fields[0].(ExprField)
	if !ok {
		t.Fatalf("field 0 = %#v", tx.Items[0].Pattern.Fields[0])
	}
	if _, ok := f0.Expr.(*BinNode); !ok {
		t.Errorf("field 0 expr = %#v", f0.Expr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`process end`,                     // missing name
		`process P( behavior -> skip end`, // bad params
		`main <a> end`,                    // missing tag
		`main -> <a>`,                     // missing end
		`main not <a>! -> skip end`,       // negated retract
		`main sel { -> skip end`,          // unclosed brace
		`main main end end`,               // main not a statement
		`blah`,                            // not a decl
		`main -> let = 1 end`,             // let missing name
		`main -> spawn (1) end`,           // spawn missing name
		`main -> <a>, end`,                // trailing comma in actions
		`process P() behavior -> skip end process P2`, // truncated second decl
		`main <a -> skip end`,                         // unclosed pattern
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDuplicateMain(t *testing.T) {
	_, err := Parse(`main -> skip end main -> skip end`)
	if err == nil || !strings.Contains(err.Error(), "duplicate main") {
		t.Errorf("err = %v", err)
	}
}

func TestParseEmptyTuplePattern(t *testing.T) {
	prog := parseOK(t, `main <> -> skip end`)
	tx := prog.Main.Body[0].(*TxnNode)
	if len(tx.Items[0].Pattern.Fields) != 0 {
		t.Errorf("fields = %d", len(tx.Items[0].Pattern.Fields))
	}
}

func BenchmarkParseAndCompile(b *testing.B) {
	src := `
process Sort(a, b)
import <a, *, *, *>; <b, *, *, *>
export <a, *, *, *>; <b, *, *, *>
behavior
  rep {
    <a, ?n1, ?v1, ?x>!, <b, ?n2, ?v2, ?y>! where ?v1 > ?v2
      -> <a, ?n2, ?v2, ?x>, <b, ?n1, ?v1, ?y>
  | <a, *, ?v1, *>, <b, *, ?v2, *> where ?v1 <= ?v2 @> exit
  }
end
main -> <1, a, 3, 2>, <2, b, 1, nil>; spawn Sort(1, 2) end
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Compile(prog); err != nil {
			b.Fatal(err)
		}
	}
}
