package lang

import (
	"testing"
)

// FuzzParse checks that the lexer/parser never panic and that anything
// that parses also formats and re-parses (`go test` runs the seed corpus;
// `go test -fuzz=FuzzParse ./internal/lang` explores further).
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`main -> skip end`,
		`main exists a: <year, ?a>! where ?a > 87 -> <found, ?a>, let N = ?a end`,
		`process P(k) import <x, ?a> where ?a <= k export <y, *> behavior -> <y, k> end`,
		`main sel { <a>! -> exit | not <b> => abort | ?x == 1 @> skip } end`,
		`main rep { <c>! -> skip }; par { <d>! -> skip } end`,
		`process S(k, j) behavior <k - pow2(j-1), ?a, j>! => <k, ?a, j+1> end`,
		`main -> <s, "str \" esc", 1.5, true, -3> end`,
		`main forall : <x, ?v> -> <y, ?v> end`,
		`main not (?x == 1) and ?y < 2 or not ?z -> skip end`,
		"main // comment\n -> <a> end",
		`process`, `main <`, `main -> < end`, `?`, `@`, `"open`,
		`main <a, *>! -> skip end`,
		`main exists : <> -> spawn Q() end`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil || prog == nil {
			return // rejection is fine; panics are not
		}
		formatted := Format(prog)
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\noriginal: %q\nformatted:\n%s",
				err, src, formatted)
		}
		if again := Format(prog2); again != formatted {
			t.Fatalf("format not idempotent for %q", src)
		}
	})
}

// FuzzLex checks the lexer alone for panics and termination.
func FuzzLex(f *testing.F) {
	for _, s := range []string{``, `a ?b 1 1.5 "x" <>!->=>@>`, "//c\n", `"\q"`, `1.2.3`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream must end with EOF: %v", toks)
		}
	})
}
