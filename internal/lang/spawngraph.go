package lang

// This file exports the program's spawn graph in AST form, for
// interprocedural analyses (analysis/dataflow): every spawn action, with
// its enclosing behavior and transaction. The compiler does not use it —
// it exists so analyzers outside this package can see actual-argument
// expressions flowing into process parameters without re-implementing the
// statement walk.

// SpawnSite is one spawn action in a behavior, with enough context to
// evaluate its arguments abstractly: the transaction whose solution
// environment the arguments are evaluated under, and the let actions that
// precede the spawn in the same action list (their bindings are visible to
// the arguments).
type SpawnSite struct {
	Caller string     // enclosing behavior (MainProcess for the main block)
	Callee string     // spawned process name
	Args   []ExprNode // actual-argument expressions
	Txn    *TxnNode   // enclosing transaction (the guard for guarded spawns)
	Lets   []LetAction // lets preceding the spawn in the same action list
	Pos    Pos
}

// SpawnSites collects every spawn site of the program, in source order per
// behavior: process declarations first (declaration order), then main.
func SpawnSites(prog *Program) []SpawnSite {
	var sites []SpawnSite
	for _, pd := range prog.Processes {
		sites = appendSpawnSites(sites, pd.Name, pd.Body)
	}
	if prog.Main != nil {
		sites = appendSpawnSites(sites, MainProcess, prog.Main.Body)
	}
	return sites
}

func appendSpawnSites(sites []SpawnSite, caller string, body []StmtNode) []SpawnSite {
	var visit func(stmts []StmtNode)
	fromTxn := func(t *TxnNode) {
		var lets []LetAction
		for _, a := range t.Actions {
			switch act := a.(type) {
			case LetAction:
				lets = append(lets, act)
			case SpawnAction:
				sites = append(sites, SpawnSite{
					Caller: caller,
					Callee: act.Name,
					Args:   act.Args,
					Txn:    t,
					Lets:   lets,
					Pos:    act.Pos,
				})
			}
		}
	}
	branches := func(bs []BranchNode) {
		for _, b := range bs {
			fromTxn(b.Guard)
			visit(b.Body)
		}
	}
	visit = func(stmts []StmtNode) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *TxnNode:
				fromTxn(st)
			case *SelNode:
				branches(st.Branches)
			case *RepNode:
				branches(st.Branches)
			case *ParNode:
				branches(st.Branches)
			}
		}
	}
	visit(body)
	return sites
}
