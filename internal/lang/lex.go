package lang

import (
	"strconv"
	"strings"
	"unicode"
)

// Lexer tokenizes SDL source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Text: word, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: pos}, nil

	case c == '?':
		lx.advance()
		if lx.off >= len(lx.src) || !isIdentStart(lx.peek()) {
			return Token{}, errAt(pos, "expected identifier after '?'")
		}
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: TokVar, Text: lx.src[start:lx.off], Pos: pos}, nil

	case unicode.IsDigit(rune(c)):
		start := lx.off
		isFloat := false
		for lx.off < len(lx.src) && (unicode.IsDigit(rune(lx.peek())) || lx.peek() == '.') {
			if lx.peek() == '.' {
				if !unicode.IsDigit(rune(lx.peek2())) {
					break
				}
				if isFloat {
					return Token{}, errAt(pos, "malformed number")
				}
				isFloat = true
			}
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, errAt(pos, "malformed float %q", text)
			}
			return Token{Kind: TokFloat, Text: text, Flt: f, Pos: pos}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errAt(pos, "malformed int %q", text)
		}
		return Token{Kind: TokInt, Text: text, Int: n, Pos: pos}, nil

	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errAt(pos, "unterminated string")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, errAt(pos, "unterminated escape")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return Token{}, errAt(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
	}

	// Operators and punctuation.
	two := func(kind TokKind, text string) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '<':
		if lx.peek2() == '=' {
			return two(TokLE, "<=")
		}
		return one(TokLT)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGE, ">=")
		}
		return one(TokGT)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEQ, "==")
		}
		if lx.peek2() == '>' {
			return two(TokDblArrow, "=>")
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNE, "!=")
		}
		return one(TokBang)
	case '-':
		if lx.peek2() == '>' {
			return two(TokArrow, "->")
		}
		return one(TokMinus)
	case '@':
		if lx.peek2() == '>' {
			return two(TokConsArrow, "@>")
		}
		return Token{}, errAt(pos, "unexpected character %q", c)
	case '+':
		return one(TokPlus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemicolon)
	case ':':
		return one(TokColon)
	case '|':
		return one(TokPipe)
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	default:
		return Token{}, errAt(pos, "unexpected character %q", c)
	}
}
