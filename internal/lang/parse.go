package lang

import (
	"github.com/sdl-lang/sdl/internal/tuple"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses an SDL source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) peekKind(n int) TokKind {
	if p.pos+n >= len(p.toks) {
		return TokEOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errAt(p.cur().Pos, "expected %s, found %s %q",
			k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokProcess:
			decl, err := p.parseProcess()
			if err != nil {
				return nil, err
			}
			prog.Processes = append(prog.Processes, decl)
		case TokMain:
			if prog.Main != nil {
				return nil, errAt(p.cur().Pos, "duplicate main block")
			}
			m, err := p.parseMain()
			if err != nil {
				return nil, err
			}
			prog.Main = m
		default:
			return nil, errAt(p.cur().Pos, "expected 'process' or 'main', found %s", p.cur().Kind)
		}
	}
	return prog, nil
}

func (p *Parser) parseProcess() (*ProcessDecl, error) {
	start, _ := p.expect(TokProcess)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokRParen) {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, id.Text)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}

	decl := &ProcessDecl{Name: name.Text, Params: params, Pos: start.Pos}
	if p.accept(TokImport) {
		rules, err := p.parseViewRules()
		if err != nil {
			return nil, err
		}
		decl.Imports = rules
	}
	if p.accept(TokExport) {
		rules, err := p.parseViewRules()
		if err != nil {
			return nil, err
		}
		decl.Exports = rules
	}
	if _, err := p.expect(TokBehavior); err != nil {
		return nil, err
	}
	body, err := p.parseStmtList()
	if err != nil {
		return nil, err
	}
	decl.Body = body
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *Parser) parseMain() (*MainDecl, error) {
	start, _ := p.expect(TokMain)
	body, err := p.parseStmtList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return &MainDecl{Body: body, Pos: start.Pos}, nil
}

// parseViewRules parses `pattern [where expr] {; pattern [where expr]}`,
// stopping before export/behavior.
func (p *Parser) parseViewRules() ([]ViewRule, error) {
	var rules []ViewRule
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		rule := ViewRule{Pattern: pat, Pos: pat.Pos}
		if p.accept(TokWhere) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rule.Where = e
		}
		rules = append(rules, rule)
		if !p.accept(TokSemicolon) {
			break
		}
		if p.at(TokExport) || p.at(TokBehavior) {
			break
		}
	}
	return rules, nil
}

// parseStmtList parses statements separated by ';' until end/}/|/EOF.
func (p *Parser) parseStmtList() ([]StmtNode, error) {
	var stmts []StmtNode
	for {
		if p.at(TokEnd) || p.at(TokRBrace) || p.at(TokPipe) || p.at(TokEOF) {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.accept(TokSemicolon) {
			return stmts, nil
		}
	}
}

func (p *Parser) parseStmt() (StmtNode, error) {
	switch p.cur().Kind {
	case TokSel:
		pos := p.next().Pos
		branches, err := p.parseBranchBlock()
		if err != nil {
			return nil, err
		}
		return &SelNode{Branches: branches, Pos: pos}, nil
	case TokRep:
		pos := p.next().Pos
		branches, err := p.parseBranchBlock()
		if err != nil {
			return nil, err
		}
		return &RepNode{Branches: branches, Pos: pos}, nil
	case TokPar:
		pos := p.next().Pos
		branches, err := p.parseBranchBlock()
		if err != nil {
			return nil, err
		}
		return &ParNode{Branches: branches, Pos: pos}, nil
	case TokSpawn, TokLet, TokExit, TokAbort, TokSkip:
		// Statement-level action sugar: `spawn P(…)` desugars to an
		// unconditional immediate transaction carrying the action list.
		t := &TxnNode{Tag: TagImmediate, Pos: p.cur().Pos}
		for {
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			t.Actions = append(t.Actions, a)
			if !p.accept(TokComma) {
				return t, nil
			}
		}
	default:
		return p.parseTxn()
	}
}

func (p *Parser) parseBranchBlock() ([]BranchNode, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var branches []BranchNode
	for {
		guard, err := p.parseTxn()
		if err != nil {
			return nil, err
		}
		branch := BranchNode{Guard: guard}
		if p.accept(TokSemicolon) {
			body, err := p.parseStmtList()
			if err != nil {
				return nil, err
			}
			branch.Body = body
		}
		branches = append(branches, branch)
		if p.accept(TokPipe) {
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return branches, nil
}

// parseTxn parses `[quant [vars] :] query tag [actions]`.
func (p *Parser) parseTxn() (*TxnNode, error) {
	t := &TxnNode{Pos: p.cur().Pos}

	// Quantifier prefix.
	if p.at(TokExists) || p.at(TokForall) {
		if p.at(TokExists) {
			t.Quant = QuantExists
		} else {
			t.Quant = QuantForall
		}
		p.next()
		for p.at(TokIdent) || p.at(TokVar) {
			tok := p.next()
			t.DeclVars = append(t.DeclVars, tok.Text)
			t.DeclVarPos = append(t.DeclVarPos, tok.Pos)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
	}

	// Query body.
	if err := p.parseQueryBody(t); err != nil {
		return nil, err
	}

	// Tag.
	switch p.cur().Kind {
	case TokArrow:
		t.Tag = TagImmediate
	case TokDblArrow:
		t.Tag = TagDelayed
	case TokConsArrow:
		t.Tag = TagConsensus
	default:
		return nil, errAt(p.cur().Pos, "expected transaction tag ->, => or @>, found %s", p.cur().Kind)
	}
	p.next()

	// Action list (possibly empty: ends at ; | } end EOF).
	afterComma := false
	for {
		switch p.cur().Kind {
		case TokSemicolon, TokPipe, TokRBrace, TokEnd, TokEOF:
			if afterComma {
				return nil, errAt(p.cur().Pos, "expected action after ','")
			}
			return t, nil
		}
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		t.Actions = append(t.Actions, a)
		if !p.accept(TokComma) {
			return t, nil
		}
		afterComma = true
	}
}

// parseQueryBody parses the binding query and test query. Three forms:
// empty (tag follows immediately), a pattern list with optional where, or
// a bare predicate expression.
func (p *Parser) parseQueryBody(t *TxnNode) error {
	switch p.cur().Kind {
	case TokArrow, TokDblArrow, TokConsArrow:
		return nil // empty query: unconditionally true
	}
	isPattern := p.at(TokLT) || (p.at(TokNot) && p.peekKind(1) == TokLT)
	if !isPattern {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		t.Where = e
		return nil
	}
	for {
		item := QueryItem{Pos: p.cur().Pos}
		if p.accept(TokNot) {
			item.Negated = true
		}
		pat, err := p.parsePattern()
		if err != nil {
			return err
		}
		item.Pattern = pat
		if p.accept(TokBang) {
			if item.Negated {
				return errAt(pat.Pos, "a negated pattern cannot be retract-tagged")
			}
			item.Retract = true
		}
		t.Items = append(t.Items, item)
		if !p.accept(TokComma) {
			break
		}
	}
	if p.accept(TokWhere) {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		t.Where = e
	}
	return nil
}

func (p *Parser) parsePattern() (PatternNode, error) {
	start, err := p.expect(TokLT)
	if err != nil {
		return PatternNode{}, err
	}
	pat := PatternNode{Pos: start.Pos}
	if p.accept(TokGT) {
		return pat, nil // empty tuple <>
	}
	for {
		if p.at(TokStar) {
			pos := p.next().Pos
			pat.Fields = append(pat.Fields, WildField{Pos: pos})
		} else {
			// Fields use the additive grammar level: '<' and '>' delimit
			// the tuple, so comparisons inside a field need parentheses.
			e, err := p.parseAdd()
			if err != nil {
				return PatternNode{}, err
			}
			pat.Fields = append(pat.Fields, ExprField{Expr: e})
		}
		if p.accept(TokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(TokGT); err != nil {
		return PatternNode{}, err
	}
	return pat, nil
}

func (p *Parser) parseAction() (ActionNode, error) {
	switch p.cur().Kind {
	case TokLT:
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		return AssertAction{Pattern: pat}, nil
	case TokLet:
		pos := p.next().Pos
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return LetAction{Name: name.Text, Expr: e, Pos: pos}, nil
	case TokSpawn:
		pos := p.next().Pos
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []ExprNode
		for !p.at(TokRParen) {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return SpawnAction{Name: name.Text, Args: args, Pos: pos}, nil
	case TokExit:
		return ExitAction{Pos: p.next().Pos}, nil
	case TokAbort:
		return AbortAction{Pos: p.next().Pos}, nil
	case TokSkip:
		return SkipAction{Pos: p.next().Pos}, nil
	default:
		return nil, errAt(p.cur().Pos, "expected action, found %s %q", p.cur().Kind, p.cur().Text)
	}
}

// --- expressions ---

func (p *Parser) parseExpr() (ExprNode, error) { return p.parseOr() }

func (p *Parser) parseOr() (ExprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinNode{Op: TokOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ExprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinNode{Op: TokAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseNot() (ExprNode, error) {
	if p.at(TokNot) {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnNode{Op: TokNot, X: x, Pos: pos}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (ExprNode, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEQ, TokNE, TokLT, TokLE, TokGT, TokGE:
		op := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinNode{Op: op.Kind, L: l, R: r, Pos: op.Pos}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (ExprNode, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinNode{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *Parser) parseMul() (ExprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinNode{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *Parser) parseUnary() (ExprNode, error) {
	if p.at(TokMinus) {
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnNode{Op: TokMinus, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ExprNode, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.next()
		return &LitNode{Value: tuple.Int(tok.Int), Pos: tok.Pos}, nil
	case TokFloat:
		p.next()
		return &LitNode{Value: tuple.Float(tok.Flt), Pos: tok.Pos}, nil
	case TokString:
		p.next()
		return &LitNode{Value: tuple.String(tok.Text), Pos: tok.Pos}, nil
	case TokTrue:
		p.next()
		return &LitNode{Value: tuple.Bool(true), Pos: tok.Pos}, nil
	case TokFalse:
		p.next()
		return &LitNode{Value: tuple.Bool(false), Pos: tok.Pos}, nil
	case TokVar:
		p.next()
		return &VarNode{Name: tok.Text, Pos: tok.Pos}, nil
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			p.next()
			var args []ExprNode
			for !p.at(TokRParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &CallNode{Name: tok.Text, Args: args, Pos: tok.Pos}, nil
		}
		return &IdentNode{Name: tok.Text, Pos: tok.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(tok.Pos, "expected expression, found %s %q", tok.Kind, tok.Text)
	}
}
