package lang

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
)

func compileOK(t *testing.T, src string) *Compiled {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// run executes src against a fresh system and returns the store.
func run(t *testing.T, src string) *dataspace.Store {
	t.Helper()
	s := dataspace.New()
	e := txn.New(s, txn.Coarse)
	rt := process.NewRuntime(e, nil)
	t.Cleanup(func() {
		rt.Shutdown()
		rt.Consensus().Close()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := LoadAndRun(ctx, rt, src); err != nil {
		t.Fatalf("run: %v", err)
	}
	return s
}

// intsWithLead collects the int second fields of <lead, n> tuples.
func intsWithLead(s *dataspace.Store, lead string) []int64 {
	var out []int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Scan(2, tuple.Atom(lead), true, func(_ tuple.ID, tp tuple.Tuple) bool {
			if n, ok := tp.Field(1).AsInt(); ok {
				out = append(out, n)
			}
			return true
		})
	})
	return out
}

func TestCompileIdentClassification(t *testing.T) {
	c := compileOK(t, `
process P(k)
behavior
  exists a: <year, ?a, k, nil> -> <out, ?a>
end
`)
	def := c.Defs[0]
	tx := def.Body[0].(process.Transact)
	fields := tx.Query.Patterns[0].Fields
	if fields[0].Kind != pattern.FieldConst { // atom year
		t.Errorf("field 0 = %+v", fields[0])
	}
	if fields[1].Kind != pattern.FieldVar || fields[1].Name != "a" {
		t.Errorf("field 1 = %+v", fields[1])
	}
	if fields[2].Kind != pattern.FieldVar || fields[2].Name != "k" { // param
		t.Errorf("field 2 = %+v", fields[2])
	}
	if fields[3].Kind != pattern.FieldConst { // atom nil
		t.Errorf("field 3 = %+v", fields[3])
	}
}

func TestCompileDeclaredVarBareUse(t *testing.T) {
	// `exists a:` declares a, so bare `a` is a variable.
	c := compileOK(t, `main exists a: <year, a> -> <out, a> end`)
	tx := c.Defs[0].Body[0].(process.Transact)
	if f := tx.Query.Patterns[0].Fields[1]; f.Kind != pattern.FieldVar || f.Name != "a" {
		t.Errorf("field = %+v", f)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`process P() behavior -> skip end process P() behavior -> skip end`, "duplicate"},
		{`main -> spawn Nope() end`, "undefined process"},
		{`process P(a) behavior -> skip end main -> spawn P() end`, "takes 1 argument"},
		{`main -> <a, *> end`, "wildcard"},
		{`main nosuchfn(1) > 0 -> skip end`, "unknown function"},
		{`main par { <a>! => skip } end`, "must be immediate"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Errorf("parse(%q): %v", tc.src, err)
			continue
		}
		_, err = Compile(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("compile(%q): err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestRunHelloDataspace(t *testing.T) {
	s := run(t, `
main
  -> <year, 85>, <year, 90>;
  exists a: <year, ?a>! where ?a > 87 -> <found, ?a>
end
`)
	found := intsWithLead(s, "found")
	if len(found) != 1 || found[0] != 90 {
		t.Errorf("found = %v", found)
	}
}

func TestRunLetAndSpawn(t *testing.T) {
	s := run(t, `
process Emit(v)
behavior
  -> <child, v>
end

main
  -> <seed, 20>;
  exists a: <seed, ?a>! -> let N = ?a + 1, spawn Emit(N + 1)
end
`)
	got := intsWithLead(s, "child")
	if len(got) != 1 || got[0] != 22 {
		t.Errorf("child = %v", got)
	}
}

func TestRunSelectionAndRepetition(t *testing.T) {
	// The paper's index/value repetition: pair positive indices, drop
	// non-positive ones, exit when none remain.
	s := run(t, `
main
  -> <index, -1>, <index, 2>, <index, 3>, <index, 0>;
  rep {
    exists p: <index, ?p>! where ?p > 0 -> <paired, ?p>
  | exists p: <index, ?p>! where ?p <= 0 -> skip
  | not <index, *> -> exit
  }
end
`)
	if got := intsWithLead(s, "paired"); len(got) != 2 {
		t.Errorf("paired = %v", got)
	}
	if got := intsWithLead(s, "index"); len(got) != 0 {
		t.Errorf("index left = %v", got)
	}
}

func TestRunSum3Source(t *testing.T) {
	s := run(t, `
// §3.1 Sum3: replication-based parallel summation.
process Sum3()
behavior
  par {
    <?n, ?a>!, <?m, ?b>! where ?n != ?m -> <?m, ?a + ?b>
  }
end

main
  -> <1, 10>, <2, 20>, <3, 30>, <4, 40>;
  spawn Sum3()
end
`)
	if s.Len() != 1 {
		t.Fatalf("store len = %d", s.Len())
	}
	var got int64
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	if got != 100 {
		t.Errorf("sum = %d", got)
	}
}

func TestRunSum2Source(t *testing.T) {
	s := run(t, `
// §3.1 Sum2: asynchronous phase-tagged summation, N = 4.
process Sum2(k, j)
behavior
  <k - pow2(j - 1), ?a, j>!, <k, ?b, j>! => <k, ?a + ?b, j + 1>
end

main
  -> <1, 10, 1>, <2, 20, 1>, <3, 30, 1>, <4, 40, 1>;
  -> spawn Sum2(2, 1), spawn Sum2(4, 1), spawn Sum2(4, 2)
end
`)
	if s.Len() != 1 {
		t.Fatalf("store len = %d", s.Len())
	}
	var got tuple.Tuple
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			got = inst.Tuple
			return false
		})
	})
	if v, _ := got.Field(1).AsInt(); v != 100 {
		t.Errorf("tuple = %v", got)
	}
	if ph, _ := got.Field(2).AsInt(); ph != 3 {
		t.Errorf("phase = %v", got)
	}
}

func TestRunDelayedProducerConsumer(t *testing.T) {
	s := run(t, `
process Consumer()
behavior
  rep {
    exists i: <job, ?i>! -> <done, ?i>
  | not <job, *>, <eof> -> exit
  }
end

process Producer(n)
behavior
  rep {
    n > 0 -> skip
  };
  -> <eof>
end

main
  -> <job, 1>, <job, 2>, <job, 3>, <eof>;
  spawn Consumer()
end
`)
	if got := intsWithLead(s, "done"); len(got) != 3 {
		t.Errorf("done = %v", got)
	}
}

func TestRunConsensusBarrierSource(t *testing.T) {
	s := run(t, `
// Two workers do a step, then synchronize by consensus, then record.
process Worker(id)
behavior
  -> <ready, id>;
  <ready, 1>, <ready, 2> @> <passed, id>
end

main
  -> <seed, 0>;
  -> spawn Worker(1), spawn Worker(2)
end
`)
	if got := intsWithLead(s, "passed"); len(got) != 2 {
		t.Errorf("passed = %v", got)
	}
}

func TestRunViewRestrictsProcess(t *testing.T) {
	s := run(t, `
// P's import hides years above 87; its query must fail, leaving no out.
process P()
import <year, ?a> where ?a <= 87
behavior
  exists a: <year, ?a> where ?a > 87 -> <out, ?a>;
  exists a: <year, ?a> where ?a <= 87 -> <ok, ?a>
end

main
  -> <year, 90>, <year, 80>;
  spawn P()
end
`)
	if got := intsWithLead(s, "out"); len(got) != 0 {
		t.Errorf("out = %v (view leak)", got)
	}
	if got := intsWithLead(s, "ok"); len(got) != 1 || got[0] != 80 {
		t.Errorf("ok = %v", got)
	}
}

func TestRunExportFilter(t *testing.T) {
	s := run(t, `
process P()
export <allowed, *>
behavior
  -> <allowed, 1>, <forbidden, 2>
end

main -> spawn P() end
`)
	if got := intsWithLead(s, "allowed"); len(got) != 1 {
		t.Errorf("allowed = %v", got)
	}
	if got := intsWithLead(s, "forbidden"); len(got) != 0 {
		t.Errorf("forbidden = %v (export leak)", got)
	}
}

func TestRunForallSource(t *testing.T) {
	s := run(t, `
main
  -> <year, 85>, <year, 90>, <year, 95>;
  forall : <year, ?a>! where ?a > 87 -> <old, ?a>
end
`)
	if got := intsWithLead(s, "old"); len(got) != 2 {
		t.Errorf("old = %v", got)
	}
	if got := intsWithLead(s, "year"); len(got) != 1 {
		t.Errorf("year = %v", got)
	}
}

func TestRunNoMain(t *testing.T) {
	prog, err := Parse(`process P() behavior -> skip end`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := dataspace.New()
	rt := process.NewRuntime(txn.New(s, txn.Coarse), nil)
	defer func() { rt.Shutdown(); rt.Consensus().Close() }()
	if err := c.Run(context.Background(), rt); err == nil {
		t.Error("Run without main should fail")
	}
}

func TestRunAbortSource(t *testing.T) {
	s := run(t, `
main
  -> <before, 1>;
  -> abort;
  -> <after, 1>
end
`)
	if got := intsWithLead(s, "after"); len(got) != 0 {
		t.Error("statement after abort ran")
	}
	if got := intsWithLead(s, "before"); len(got) != 1 {
		t.Error("statement before abort missing")
	}
}

func TestCompileUnboundVariableDiagnostics(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		// Variable only in a negated pattern leaks into an assertion.
		{`main not <x, ?v> -> <y, ?v> end`, "no positive pattern binds"},
		// Test query uses an undeclared variable.
		{`main <a, ?x> where ?z > 1 -> skip end`, "test query"},
		// Spawn argument unbound.
		{`process P(k) behavior -> skip end
main -> spawn P(?nope) end`, "spawn argument"},
		// Let expression unbound.
		{`main -> let N = ?ghost end`, "let action"},
		// Assertion with computed expression over an unbound variable.
		{`main <a, ?x> -> <b, ?x + ?ghost> end`, "assertion"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Errorf("parse(%q): %v", tc.src, err)
			continue
		}
		_, err = Compile(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("compile(%q): err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestCompileNegationVarsUsableInsideNegation(t *testing.T) {
	// A fresh variable inside a negated pattern is a wildcard of the
	// negation: legal there, illegal outside.
	if _, err := Compile(mustParse(t, `main <a, ?x>, not <b, ?w> -> <c, ?x> end`)); err != nil {
		t.Errorf("negation-local variable rejected: %v", err)
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMergePrograms(t *testing.T) {
	lib := mustParse(t, `process A() behavior -> <a> end`)
	drv := mustParse(t, `process B() behavior -> <b> end
main spawn A(), spawn B() end`)
	merged, err := Merge(lib, drv)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Processes) != 2 || merged.Main == nil {
		t.Fatalf("merged = %+v", merged)
	}
	if _, err := Compile(merged); err != nil {
		t.Fatal(err)
	}

	// Duplicate process across files.
	dup := mustParse(t, `process A() behavior -> skip end`)
	if _, err := Merge(lib, dup); err == nil {
		t.Error("duplicate process accepted")
	}
	// Two mains.
	m2 := mustParse(t, `main -> skip end`)
	if _, err := Merge(drv, m2); err == nil {
		t.Error("two mains accepted")
	}
}

func TestRunCondBuiltinSource(t *testing.T) {
	// The worker-model threshold in one guard, thanks to cond().
	s := run(t, `
main
  -> <pix, 1, 42>, <pix, 2, 180>;
  rep {
    exists p, v: <pix, ?p, ?v>! -> <th, ?p, cond(?v >= 100, 1, 0)>
  }
end
`)
	got := map[int64]int64{}
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			p, _ := inst.Tuple.Field(1).AsInt()
			v, _ := inst.Tuple.Field(2).AsInt()
			got[p] = v
			return true
		})
	})
	if got[1] != 0 || got[2] != 1 {
		t.Errorf("thresholds = %v", got)
	}
}
