package lang

import (
	"context"
	"fmt"

	"github.com/sdl-lang/sdl/internal/analysis/footprint"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/view"
)

// MainProcess is the definition name given to a program's main block.
const MainProcess = "main"

// Compiled is a compiled SDL program ready to install into a runtime.
type Compiled struct {
	Defs    []*process.Definition
	HasMain bool
}

// FootprintJudgment is an interprocedural refinement of a transaction's
// static footprint class, produced by a FootprintRefiner (the
// analysis/dataflow package). Keys must be non-empty exactly when Class is
// footprint.GroundKeys: the refiner proved every lead environment-
// independent and computed the complete bucket set.
type FootprintJudgment struct {
	Class footprint.Class
	Keys  []dataspace.InterestKey
}

// FootprintRefiner refines the compiler's per-transaction footprint
// classification with whole-program knowledge. RefineTxn is called once
// per compiled transaction with the enclosing process name (MainProcess
// for the main block), the transaction's AST node, and the compiler's own
// conservative class; returning ok=false keeps the conservative class.
//
// The compiler only accepts refinements that widen the commuting fast
// path's intake in directions the runtime can double-check: Ground (the
// dynamic planner re-evaluates every lead and remains authoritative) and
// GroundKeys with an attached key set (the engine trusts the keys, and the
// store's writer panics on any mutation outside them).
type FootprintRefiner interface {
	RefineTxn(proc string, t *TxnNode, base footprint.Class) (FootprintJudgment, bool)
}

// CompileOptions configures compilation.
type CompileOptions struct {
	// Refiner, when non-nil, refines per-transaction footprint classes
	// (see FootprintRefiner).
	Refiner FootprintRefiner
}

// Compile translates a parsed program into process definitions using the
// compiler's intraprocedural footprint classification only.
func Compile(prog *Program) (*Compiled, error) {
	return CompileWith(prog, CompileOptions{})
}

// CompileWith is Compile with options.
func CompileWith(prog *Program, opts CompileOptions) (*Compiled, error) {
	c := &compiler{
		arities: make(map[string]int),
		refiner: opts.Refiner,
	}
	for _, pd := range prog.Processes {
		if pd.Name == MainProcess {
			return nil, errAt(pd.Pos, "process name %q is reserved", MainProcess)
		}
		if _, dup := c.arities[pd.Name]; dup {
			return nil, errAt(pd.Pos, "duplicate process %q", pd.Name)
		}
		c.arities[pd.Name] = len(pd.Params)
	}
	if prog.Main != nil {
		c.arities[MainProcess] = 0
	}

	out := &Compiled{HasMain: prog.Main != nil}
	for _, pd := range prog.Processes {
		def, err := c.compileProcess(pd)
		if err != nil {
			return nil, err
		}
		out.Defs = append(out.Defs, def)
	}
	if prog.Main != nil {
		c.proc = MainProcess
		sc := newScope(nil)
		collectLets(prog.Main.Body, sc)
		body, err := c.compileStmts(prog.Main.Body, sc)
		if err != nil {
			return nil, err
		}
		out.Defs = append(out.Defs, &process.Definition{Name: MainProcess, Body: body})
	}
	return out, nil
}

// Install registers every definition into the runtime.
func (c *Compiled) Install(rt *process.Runtime) error {
	for _, d := range c.Defs {
		if err := rt.Define(d); err != nil {
			return err
		}
	}
	return nil
}

// Run installs the program and executes its main block, waiting for the
// whole society to terminate.
func (c *Compiled) Run(ctx context.Context, rt *process.Runtime) error {
	if err := c.Install(rt); err != nil {
		return err
	}
	if !c.HasMain {
		return fmt.Errorf("lang: program has no main block")
	}
	if _, err := rt.Spawn(MainProcess); err != nil {
		return err
	}
	if err := rt.WaitCtx(ctx); err != nil {
		return err
	}
	if errs := rt.Errors(); len(errs) > 0 {
		return fmt.Errorf("lang: %d process error(s), first: %w", len(errs), errs[0])
	}
	return nil
}

// LoadAndRun parses, compiles, installs, and runs src on the runtime.
func LoadAndRun(ctx context.Context, rt *process.Runtime, src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	compiled, err := Compile(prog)
	if err != nil {
		return err
	}
	return compiled.Run(ctx, rt)
}

// Merge combines several parsed programs (e.g. a library file of process
// definitions plus a driver file with the main block) into one. Duplicate
// process names and multiple main blocks are rejected.
func Merge(progs ...*Program) (*Program, error) {
	out := &Program{}
	seen := map[string]bool{}
	for _, p := range progs {
		for _, pd := range p.Processes {
			if seen[pd.Name] {
				return nil, errAt(pd.Pos, "duplicate process %q across files", pd.Name)
			}
			seen[pd.Name] = true
			out.Processes = append(out.Processes, pd)
		}
		if p.Main != nil {
			if out.Main != nil {
				return nil, errAt(p.Main.Pos, "multiple main blocks across files")
			}
			out.Main = p.Main
		}
	}
	return out, nil
}

// compiler carries program-level context.
type compiler struct {
	arities map[string]int // process name -> parameter count
	refiner FootprintRefiner
	proc    string // name of the process being compiled
	// viewRestricted is true while compiling a process with import/export
	// clauses: its transactions can never be footprint-planned by the
	// intraprocedural classifier alone (a restricted view may consult
	// arbitrary buckets), so they are stamped footprint.Wildcard unless a
	// refiner proves the view plannable and the leads ground.
	viewRestricted bool
}

// scope tracks which identifiers denote runtime bindings (process
// parameters, let-constants, quantified variables) as opposed to atoms.
type scope struct {
	bound map[string]bool
}

func newScope(params []string) *scope {
	s := &scope{bound: make(map[string]bool, len(params))}
	for _, p := range params {
		s.bound[p] = true
	}
	return s
}

func (s *scope) clone() *scope {
	cp := &scope{bound: make(map[string]bool, len(s.bound))}
	for k := range s.bound {
		cp.bound[k] = true
	}
	return cp
}

func (s *scope) bind(name string) { s.bound[name] = true }

func (s *scope) isBound(name string) bool { return s.bound[name] }

func (c *compiler) compileProcess(pd *ProcessDecl) (*process.Definition, error) {
	c.proc = pd.Name
	c.viewRestricted = len(pd.Imports) > 0 || len(pd.Exports) > 0
	defer func() { c.viewRestricted = false }()
	sc := newScope(pd.Params)
	// Let-constants become bound identifiers for the whole behavior (a
	// deliberate widening of the paper's sequential let scoping: a use
	// before the let binds fails at run time with an unbound variable).
	collectLets(pd.Body, sc)

	body, err := c.compileStmts(pd.Body, sc)
	if err != nil {
		return nil, err
	}
	def := &process.Definition{Name: pd.Name, Params: pd.Params, Body: body}

	if len(pd.Imports) > 0 || len(pd.Exports) > 0 {
		impClause, err := c.compileClause(pd.Imports, pd.Params)
		if err != nil {
			return nil, err
		}
		expClause, err := c.compileClause(pd.Exports, pd.Params)
		if err != nil {
			return nil, err
		}
		def.View = func(expr.Env) view.View {
			return view.New(impClause, expClause)
		}
	}
	return def, nil
}

func collectLets(stmts []StmtNode, sc *scope) {
	for _, s := range stmts {
		Walk(s, func(n Node) bool {
			if l, ok := n.(LetAction); ok {
				sc.bind(l.Name)
			}
			return true
		})
	}
}

// compileClause builds a view clause from rules; no rules = Everything.
func (c *compiler) compileClause(rules []ViewRule, params []string) (view.Clause, error) {
	if len(rules) == 0 {
		return view.Everything(), nil
	}
	matchers := make([]view.Matcher, 0, len(rules))
	for _, r := range rules {
		sc := newScope(params)
		// Variables in the rule's pattern are quantified over the rule.
		declarePatternVars(r.Pattern, sc)
		pat, err := c.compilePattern(r.Pattern, sc)
		if err != nil {
			return view.Clause{}, err
		}
		if r.Where == nil {
			matchers = append(matchers, view.Pat(pat))
			continue
		}
		where, err := c.compileExpr(r.Where, sc)
		if err != nil {
			return view.Clause{}, err
		}
		matchers = append(matchers, view.PatWhere(pat, where))
	}
	return view.Union(matchers...), nil
}

func declarePatternVars(p PatternNode, sc *scope) {
	for _, f := range p.Fields {
		if ef, ok := f.(ExprField); ok {
			if v, ok := ef.Expr.(*VarNode); ok {
				sc.bind(v.Name)
			}
		}
	}
}

func (c *compiler) compileStmts(stmts []StmtNode, sc *scope) ([]process.Stmt, error) {
	out := make([]process.Stmt, 0, len(stmts))
	for _, s := range stmts {
		st, err := c.compileStmt(s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (c *compiler) compileStmt(s StmtNode, sc *scope) (process.Stmt, error) {
	switch st := s.(type) {
	case *TxnNode:
		return c.compileTxn(st, sc)
	case *SelNode:
		bs, err := c.compileBranches(st.Branches, sc, false)
		if err != nil {
			return nil, err
		}
		return process.Select{Branches: bs}, nil
	case *RepNode:
		bs, err := c.compileBranches(st.Branches, sc, false)
		if err != nil {
			return nil, err
		}
		return process.Repeat{Branches: bs}, nil
	case *ParNode:
		bs, err := c.compileBranches(st.Branches, sc, true)
		if err != nil {
			return nil, err
		}
		return process.Replicate{Branches: bs}, nil
	default:
		return nil, fmt.Errorf("lang: unknown statement %T", s)
	}
}

func (c *compiler) compileBranches(bs []BranchNode, sc *scope, replication bool) ([]process.Branch, error) {
	out := make([]process.Branch, 0, len(bs))
	for _, b := range bs {
		if replication && b.Guard.Tag != TagImmediate {
			return nil, errAt(b.Guard.Pos, "replication guards must be immediate ('->')")
		}
		guard, err := c.compileTxn(b.Guard, sc)
		if err != nil {
			return nil, err
		}
		body, err := c.compileStmts(b.Body, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, process.Branch{Guard: guard, Body: body})
	}
	return out, nil
}

func (c *compiler) compileTxn(t *TxnNode, sc *scope) (process.Transact, error) {
	// Per-transaction scope: declared variables plus ?vars in patterns.
	ts := sc.clone()
	for _, v := range t.DeclVars {
		ts.bind(v)
	}
	for _, item := range t.Items {
		declarePatternVars(item.Pattern, ts)
	}

	q := pattern.Query{Quant: pattern.Exists}
	if t.Quant == QuantForall {
		q.Quant = pattern.ForAll
	}
	for _, item := range t.Items {
		pat, err := c.compilePattern(item.Pattern, ts)
		if err != nil {
			return process.Transact{}, err
		}
		pat.Negated = item.Negated
		pat.Retract = item.Retract
		q.Patterns = append(q.Patterns, pat)
	}
	if t.Where != nil {
		where, err := c.compileExpr(t.Where, ts)
		if err != nil {
			return process.Transact{}, err
		}
		q.Test = where
	}

	// Static binding check: a variable referenced by the test query, an
	// assertion, or an action must be a parameter, a let-constant, or
	// bound by a positive (non-negated) pattern; variables appearing only
	// in negated patterns are wildcards of the negation and carry no
	// binding out of it.
	runtimeBound := sc.clone() // params + lets, before quantifier decls
	for _, pat := range q.Patterns {
		if pat.Negated {
			continue
		}
		for _, f := range pat.Fields {
			if f.Kind == pattern.FieldVar {
				runtimeBound.bind(f.Name)
			}
		}
	}
	checkBound := func(e expr.Expr, what string) error {
		if e == nil {
			return nil
		}
		for _, name := range e.Vars(nil) {
			if !runtimeBound.isBound(name) {
				return errAt(t.Pos,
					"variable %s in %s is not a parameter and no positive pattern binds it",
					name, what)
			}
		}
		return nil
	}
	if err := checkBound(q.Test, "the test query"); err != nil {
		return process.Transact{}, err
	}

	tx := process.Transact{Query: q}
	switch t.Tag {
	case TagDelayed:
		tx.Kind = process.Delayed
	case TagConsensus:
		tx.Kind = process.Consensus
	default:
		tx.Kind = process.Immediate
	}

	for _, a := range t.Actions {
		switch act := a.(type) {
		case AssertAction:
			pat, err := c.compilePattern(act.Pattern, ts)
			if err != nil {
				return process.Transact{}, err
			}
			for i, f := range pat.Fields {
				switch f.Kind {
				case pattern.FieldWildcard:
					return process.Transact{}, errAt(act.Pattern.Pos,
						"assertion field %d is a wildcard; assertions must be ground", i+1)
				case pattern.FieldVar:
					if !runtimeBound.isBound(f.Name) {
						return process.Transact{}, errAt(act.Pattern.Pos,
							"variable %s in assertion is not a parameter and no positive pattern binds it", f.Name)
					}
				case pattern.FieldExpr:
					if err := checkBound(f.Expr, "an assertion"); err != nil {
						return process.Transact{}, err
					}
				}
			}
			tx.Asserts = append(tx.Asserts, pat)
		case LetAction:
			e, err := c.compileExpr(act.Expr, ts)
			if err != nil {
				return process.Transact{}, err
			}
			if err := checkBound(e, "a let action"); err != nil {
				return process.Transact{}, err
			}
			tx.Actions = append(tx.Actions, process.Let{Name: act.Name, Expr: e})
		case SpawnAction:
			arity, ok := c.arities[act.Name]
			if !ok {
				return process.Transact{}, errAt(act.Pos, "spawn of undefined process %q", act.Name)
			}
			if arity != len(act.Args) {
				return process.Transact{}, errAt(act.Pos,
					"process %q takes %d argument(s), got %d", act.Name, arity, len(act.Args))
			}
			args := make([]expr.Expr, len(act.Args))
			for i, an := range act.Args {
				e, err := c.compileExpr(an, ts)
				if err != nil {
					return process.Transact{}, err
				}
				if err := checkBound(e, "a spawn argument"); err != nil {
					return process.Transact{}, err
				}
				args[i] = e
			}
			tx.Actions = append(tx.Actions, process.Spawn{Type: act.Name, Args: args})
		case ExitAction:
			tx.Actions = append(tx.Actions, process.Exit{})
		case AbortAction:
			tx.Actions = append(tx.Actions, process.Abort{})
		case SkipAction:
			// no-op
		default:
			return process.Transact{}, fmt.Errorf("lang: unknown action %T", a)
		}
	}

	// Static footprint classification, against the issuing environment
	// (params + lets — the outer scope, NOT ts: quantifier-declared and
	// pattern-bound variables are not in the runtime request environment
	// the leads are evaluated under). Computed after the actions loop so
	// tx.Asserts is complete.
	if c.viewRestricted {
		tx.Footprint = footprint.Wildcard
	} else {
		tx.Footprint = footprint.Classify(q, tx.Asserts, sc.isBound)
	}
	if c.refiner != nil {
		if j, ok := c.refiner.RefineTxn(c.proc, t, tx.Footprint); ok {
			switch {
			case j.Class == footprint.GroundKeys && len(j.Keys) > 0:
				tx.Footprint, tx.StaticKeys = j.Class, j.Keys
			case j.Class == footprint.Ground && len(j.Keys) == 0:
				// Optimistic only: the dynamic planner re-evaluates every
				// lead, so a wrong Ground refinement costs a failed plan,
				// never a wrong lock set.
				tx.Footprint = footprint.Ground
			}
		}
	}
	return tx, nil
}

func (c *compiler) compilePattern(p PatternNode, sc *scope) (pattern.Pattern, error) {
	fields := make([]pattern.Field, 0, len(p.Fields))
	for _, f := range p.Fields {
		switch fn := f.(type) {
		case WildField:
			fields = append(fields, pattern.W())
		case ExprField:
			switch en := fn.Expr.(type) {
			case *VarNode:
				fields = append(fields, pattern.V(en.Name))
			case *IdentNode:
				if sc.isBound(en.Name) {
					fields = append(fields, pattern.V(en.Name))
				} else {
					fields = append(fields, pattern.C(tuple.Atom(en.Name)))
				}
			case *LitNode:
				fields = append(fields, pattern.C(en.Value))
			default:
				e, err := c.compileExpr(fn.Expr, sc)
				if err != nil {
					return pattern.Pattern{}, err
				}
				fields = append(fields, pattern.E(e))
			}
		default:
			return pattern.Pattern{}, fmt.Errorf("lang: unknown field %T", f)
		}
	}
	return pattern.P(fields...), nil
}

var tokToOp = map[TokKind]expr.Op{
	TokPlus: expr.OpAdd, TokMinus: expr.OpSub, TokStar: expr.OpMul,
	TokSlash: expr.OpDiv, TokPercent: expr.OpMod,
	TokEQ: expr.OpEq, TokNE: expr.OpNe,
	TokLT: expr.OpLt, TokLE: expr.OpLe, TokGT: expr.OpGt, TokGE: expr.OpGe,
	TokAnd: expr.OpAnd, TokOr: expr.OpOr,
}

// OpFor maps an operator token kind to the runtime's expression operator.
// It is shared by the compiler and the static analyzer's constant folder.
func OpFor(k TokKind) (expr.Op, bool) {
	op, ok := tokToOp[k]
	return op, ok
}

func (c *compiler) compileExpr(e ExprNode, sc *scope) (expr.Expr, error) {
	switch en := e.(type) {
	case *LitNode:
		return expr.Const(en.Value), nil
	case *VarNode:
		return expr.V(en.Name), nil
	case *IdentNode:
		if sc.isBound(en.Name) {
			return expr.V(en.Name), nil
		}
		return expr.Const(tuple.Atom(en.Name)), nil
	case *BinNode:
		op, ok := tokToOp[en.Op]
		if !ok {
			return nil, errAt(en.Pos, "unsupported operator %s", en.Op)
		}
		l, err := c.compileExpr(en.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(en.R, sc)
		if err != nil {
			return nil, err
		}
		return expr.Bin(op, l, r), nil
	case *UnNode:
		x, err := c.compileExpr(en.X, sc)
		if err != nil {
			return nil, err
		}
		if en.Op == TokNot {
			return expr.Not(x), nil
		}
		return expr.Neg(x), nil
	case *CallNode:
		if !expr.HasBuiltin(en.Name) {
			return nil, errAt(en.Pos, "unknown function %q", en.Name)
		}
		args := make([]expr.Expr, len(en.Args))
		for i, a := range en.Args {
			x, err := c.compileExpr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return expr.Fn(en.Name, args...), nil
	default:
		return nil, fmt.Errorf("lang: unknown expression %T", e)
	}
}
