package lang

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to SDL source. The output
// re-parses to an equivalent program (expressions are parenthesized, so
// precedence is explicit). It is the basis of sdli's -fmt flag and of the
// parser's round-trip tests.
func Format(p *Program) string {
	var b strings.Builder
	for i, pd := range p.Processes {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatProcess(&b, pd)
	}
	if p.Main != nil {
		if len(p.Processes) > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("main\n")
		formatStmts(&b, p.Main.Body, 1)
		b.WriteString("end\n")
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatProcess(b *strings.Builder, pd *ProcessDecl) {
	fmt.Fprintf(b, "process %s(%s)\n", pd.Name, strings.Join(pd.Params, ", "))
	formatRules := func(kw string, rules []ViewRule) {
		if len(rules) == 0 {
			return
		}
		b.WriteString(kw)
		b.WriteByte('\n')
		for i, r := range rules {
			indent(b, 1)
			b.WriteString(formatPattern(r.Pattern))
			if r.Where != nil {
				b.WriteString(" where ")
				b.WriteString(formatExpr(r.Where))
			}
			if i < len(rules)-1 {
				b.WriteByte(';')
			}
			b.WriteByte('\n')
		}
	}
	formatRules("import", pd.Imports)
	formatRules("export", pd.Exports)
	b.WriteString("behavior\n")
	formatStmts(b, pd.Body, 1)
	b.WriteString("end\n")
}

func formatStmts(b *strings.Builder, stmts []StmtNode, depth int) {
	for i, s := range stmts {
		formatStmt(b, s, depth)
		if i < len(stmts)-1 {
			b.WriteByte(';')
		}
		b.WriteByte('\n')
	}
}

func formatStmt(b *strings.Builder, s StmtNode, depth int) {
	switch st := s.(type) {
	case *TxnNode:
		indent(b, depth)
		b.WriteString(formatTxn(st))
	case *SelNode:
		formatBlock(b, "sel", st.Branches, depth)
	case *RepNode:
		formatBlock(b, "rep", st.Branches, depth)
	case *ParNode:
		formatBlock(b, "par", st.Branches, depth)
	}
}

func formatBlock(b *strings.Builder, kw string, branches []BranchNode, depth int) {
	indent(b, depth)
	b.WriteString(kw)
	b.WriteString(" {\n")
	for i, br := range branches {
		indent(b, depth+1)
		b.WriteString(formatTxn(br.Guard))
		if len(br.Body) > 0 {
			b.WriteString(";\n")
			var inner strings.Builder
			formatStmts(&inner, br.Body, depth+2)
			b.WriteString(strings.TrimRight(inner.String(), "\n"))
		}
		b.WriteByte('\n')
		if i < len(branches)-1 {
			indent(b, depth)
			b.WriteString("|\n")
		}
	}
	indent(b, depth)
	b.WriteString("}")
}

func formatTxn(t *TxnNode) string {
	var b strings.Builder
	switch t.Quant {
	case QuantExists:
		b.WriteString("exists ")
		b.WriteString(strings.Join(t.DeclVars, ", "))
		if len(t.DeclVars) > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(": ")
	case QuantForall:
		b.WriteString("forall ")
		b.WriteString(strings.Join(t.DeclVars, ", "))
		if len(t.DeclVars) > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(": ")
	}
	for i, item := range t.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if item.Negated {
			b.WriteString("not ")
		}
		b.WriteString(formatPattern(item.Pattern))
		if item.Retract {
			b.WriteByte('!')
		}
	}
	if t.Where != nil {
		if len(t.Items) > 0 {
			b.WriteString(" where ")
		}
		b.WriteString(formatExpr(t.Where))
	}
	if len(t.Items) > 0 || t.Where != nil {
		b.WriteByte(' ')
	}
	switch t.Tag {
	case TagDelayed:
		b.WriteString("=>")
	case TagConsensus:
		b.WriteString("@>")
	default:
		b.WriteString("->")
	}
	if len(t.Actions) == 0 {
		b.WriteString(" skip")
		return b.String()
	}
	for i, a := range t.Actions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(' ')
		b.WriteString(formatAction(a))
	}
	return b.String()
}

func formatAction(a ActionNode) string {
	switch act := a.(type) {
	case AssertAction:
		return formatPattern(act.Pattern)
	case LetAction:
		return fmt.Sprintf("let %s = %s", act.Name, formatExpr(act.Expr))
	case SpawnAction:
		args := make([]string, len(act.Args))
		for i, e := range act.Args {
			args[i] = formatExpr(e)
		}
		return fmt.Sprintf("spawn %s(%s)", act.Name, strings.Join(args, ", "))
	case ExitAction:
		return "exit"
	case AbortAction:
		return "abort"
	case SkipAction:
		return "skip"
	default:
		return "?"
	}
}

// PatternString renders one tuple pattern in source syntax. Diagnostics
// (the static analyzer, sdlvet) use it to echo the offending pattern.
func PatternString(p PatternNode) string { return formatPattern(p) }

// ExprString renders one expression in source syntax (parenthesized), for
// diagnostics.
func ExprString(e ExprNode) string { return formatExpr(e) }

func formatPattern(p PatternNode) string {
	fields := make([]string, len(p.Fields))
	for i, f := range p.Fields {
		switch fn := f.(type) {
		case WildField:
			fields[i] = "*"
		case ExprField:
			fields[i] = formatExpr(fn.Expr)
		default:
			fields[i] = "?"
		}
	}
	return "<" + strings.Join(fields, ", ") + ">"
}

var tokOpText = map[TokKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokEQ: "==", TokNE: "!=", TokLT: "<", TokLE: "<=", TokGT: ">", TokGE: ">=",
	TokAnd: "and", TokOr: "or",
}

// quoteString renders a string literal using only the escapes the lexer
// accepts (\n \t \" \\); all other bytes pass through verbatim.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func formatExpr(e ExprNode) string {
	switch en := e.(type) {
	case *LitNode:
		if s, ok := en.Value.AsString(); ok {
			return quoteString(s)
		}
		// A bare negative literal re-parses as unary minus; parenthesize
		// it the same way the unary form formats, so formatting is a
		// parse fixpoint.
		if n, ok := en.Value.Numeric(); ok && n < 0 {
			return "(" + en.Value.String() + ")"
		}
		return en.Value.String()
	case *IdentNode:
		return en.Name
	case *VarNode:
		return "?" + en.Name
	case *BinNode:
		return fmt.Sprintf("(%s %s %s)", formatExpr(en.L), tokOpText[en.Op], formatExpr(en.R))
	case *UnNode:
		if en.Op == TokNot {
			return fmt.Sprintf("(not %s)", formatExpr(en.X))
		}
		return fmt.Sprintf("(-%s)", formatExpr(en.X))
	case *CallNode:
		args := make([]string, len(en.Args))
		for i, a := range en.Args {
			args[i] = formatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", en.Name, strings.Join(args, ", "))
	default:
		return "?"
	}
}
