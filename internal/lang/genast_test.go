package lang

// Generative round-trip property: random well-formed ASTs must format to
// source that re-parses to the identical formatted string. This explores
// combinations (nested constructs, guards, quantifiers, action lists) that
// hand-written cases and byte-level fuzzing rarely reach together.

import (
	"math/rand"
	"testing"

	"github.com/sdl-lang/sdl/internal/tuple"
)

type astGen struct{ rng *rand.Rand }

func (g *astGen) ident() string {
	names := []string{"alpha", "beta", "k", "j", "node", "value"}
	return names[g.rng.Intn(len(names))]
}

func (g *astGen) varName() string {
	names := []string{"a", "b", "v", "x", "y"}
	return names[g.rng.Intn(len(names))]
}

func (g *astGen) expr(depth int) ExprNode {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return &LitNode{Value: tuple.Int(int64(g.rng.Intn(100) - 50))}
		case 1:
			return &LitNode{Value: tuple.Bool(g.rng.Intn(2) == 0)}
		case 2:
			return &VarNode{Name: g.varName()}
		default:
			return &IdentNode{Name: g.ident()}
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		ops := []TokKind{TokPlus, TokMinus, TokStar, TokSlash, TokPercent}
		return &BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 1:
		ops := []TokKind{TokEQ, TokNE, TokLT, TokLE, TokGT, TokGE}
		return &BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 2:
		ops := []TokKind{TokAnd, TokOr}
		return &BinNode{Op: ops[g.rng.Intn(len(ops))],
			L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 3:
		if g.rng.Intn(2) == 0 {
			return &UnNode{Op: TokNot, X: g.expr(depth - 1)}
		}
		return &UnNode{Op: TokMinus, X: g.expr(depth - 1)}
	case 4:
		return &CallNode{Name: "min", Args: []ExprNode{g.expr(depth - 1), g.expr(depth - 1)}}
	default:
		return g.expr(0)
	}
}

func (g *astGen) patternNode() PatternNode {
	n := 1 + g.rng.Intn(3)
	fields := make([]FieldNode, n)
	for i := range fields {
		switch g.rng.Intn(4) {
		case 0:
			fields[i] = WildField{}
		case 1:
			fields[i] = ExprField{Expr: &VarNode{Name: g.varName()}}
		case 2:
			fields[i] = ExprField{Expr: &IdentNode{Name: g.ident()}}
		default:
			fields[i] = ExprField{Expr: g.expr(1)}
		}
	}
	return PatternNode{Fields: fields}
}

func (g *astGen) txn(allowBlocking bool) *TxnNode {
	t := &TxnNode{Tag: TagImmediate}
	if allowBlocking {
		t.Tag = []TagKind{TagImmediate, TagDelayed, TagConsensus}[g.rng.Intn(3)]
	}
	switch g.rng.Intn(3) {
	case 0: // pattern query
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			item := QueryItem{Pattern: g.patternNode()}
			switch g.rng.Intn(3) {
			case 0:
				item.Retract = true
			case 1:
				item.Negated = true
			}
			t.Items = append(t.Items, item)
		}
		if g.rng.Intn(2) == 0 {
			t.Where = g.expr(2)
		}
	case 1: // test-only query
		t.Where = g.expr(2)
	default: // empty query
	}
	// Actions.
	for i := g.rng.Intn(3); i > 0; i-- {
		switch g.rng.Intn(5) {
		case 0:
			t.Actions = append(t.Actions, AssertAction{Pattern: g.patternNode()})
		case 1:
			t.Actions = append(t.Actions, LetAction{Name: "N", Expr: g.expr(1)})
		case 2:
			t.Actions = append(t.Actions, ExitAction{})
		case 3:
			t.Actions = append(t.Actions, SkipAction{})
		default:
			t.Actions = append(t.Actions, AbortAction{})
		}
	}
	return t
}

func (g *astGen) stmt(depth int) StmtNode {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.txn(true)
	}
	branches := make([]BranchNode, 1+g.rng.Intn(2))
	for i := range branches {
		branches[i] = BranchNode{Guard: g.txn(true)}
		for j := g.rng.Intn(2); j > 0; j-- {
			branches[i].Body = append(branches[i].Body, g.stmt(depth-1))
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return &SelNode{Branches: branches}
	case 1:
		return &RepNode{Branches: branches}
	default:
		// Replication guards must be immediate for the compiler, but the
		// formatter/parser round trip does not compile, so any tag is fine
		// syntactically; still keep it immediate for realism.
		for i := range branches {
			branches[i].Guard.Tag = TagImmediate
		}
		return &ParNode{Branches: branches}
	}
}

func (g *astGen) program() *Program {
	p := &Program{}
	for i := g.rng.Intn(3); i > 0; i-- {
		pd := &ProcessDecl{
			Name:   []string{"Alpha", "Beta", "Gamma"}[g.rng.Intn(3)] + string(rune('A'+g.rng.Intn(26))),
			Params: []string{"k", "j"}[:g.rng.Intn(3)],
		}
		for r := g.rng.Intn(3); r > 0; r-- {
			rule := ViewRule{Pattern: g.patternNode()}
			if g.rng.Intn(2) == 0 {
				rule.Where = g.expr(1)
			}
			pd.Imports = append(pd.Imports, rule)
		}
		for s := 1 + g.rng.Intn(3); s > 0; s-- {
			pd.Body = append(pd.Body, g.stmt(2))
		}
		p.Processes = append(p.Processes, pd)
	}
	m := &MainDecl{}
	for s := 1 + g.rng.Intn(3); s > 0; s-- {
		m.Body = append(m.Body, g.stmt(2))
	}
	p.Main = m
	return p
}

func TestGenerativeFormatParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	g := &astGen{rng: rng}
	for trial := 0; trial < 300; trial++ {
		prog := g.program()
		f1 := Format(prog)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("trial %d: formatted output does not parse: %v\n%s", trial, err, f1)
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Fatalf("trial %d: format not a fixpoint\n--- f1 ---\n%s\n--- f2 ---\n%s", trial, f1, f2)
		}
	}
}
