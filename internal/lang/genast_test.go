package lang_test

// Generative round-trip property: random well-formed ASTs must format to
// source that re-parses to the identical formatted string. This explores
// combinations (nested constructs, guards, quantifiers, action lists) that
// hand-written cases and byte-level fuzzing rarely reach together. The
// generator itself lives in langtest so the static analyzer's fuzz harness
// can reuse it.

import (
	"math/rand"
	"testing"

	"github.com/sdl-lang/sdl/internal/lang"
	"github.com/sdl-lang/sdl/internal/lang/langtest"
)

func TestGenerativeFormatParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	g := langtest.NewGen(rng)
	for trial := 0; trial < 300; trial++ {
		prog := g.Program()
		f1 := lang.Format(prog)
		p2, err := lang.Parse(f1)
		if err != nil {
			t.Fatalf("trial %d: formatted output does not parse: %v\n%s", trial, err, f1)
		}
		f2 := lang.Format(p2)
		if f1 != f2 {
			t.Fatalf("trial %d: format not a fixpoint\n--- f1 ---\n%s\n--- f2 ---\n%s", trial, f1, f2)
		}
	}
}
