package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// roundTrip checks that formatting is stable: format(parse(format(parse(src))))
// equals format(parse(src)).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	f1 := Format(p1)
	p2, err := Parse(f1)
	if err != nil {
		t.Fatalf("re-parse formatted: %v\nformatted:\n%s", err, f1)
	}
	f2 := Format(p2)
	if f1 != f2 {
		t.Errorf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
	}
	return f1
}

func TestFormatBasicShapes(t *testing.T) {
	out := roundTrip(t, `
process P(k)
import <year, ?a> where ?a <= 87; <month, *>
export <year, *>
behavior
  exists a: <year, ?a>! where ?a > k -> <found, ?a>, let N = ?a, spawn P(N);
  sel {
    <a>! -> exit
  | not <b, *> => abort
  | ?x == 1 @> skip
  };
  rep { <c>! -> skip };
  par { <d>! -> skip }
end

main
  -> <init, 1>;
  forall : <x, ?v> -> <y, ?v>
end
`)
	for _, want := range []string{
		"process P(k)", "import", "export", "behavior",
		"where (?a <= 87)", "sel {", "rep {", "par {",
		"=> abort", "@> skip", "not <b, *>", "forall : <x, ?v>",
		"spawn P(N)", "let N = ?a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatExprParenthesization(t *testing.T) {
	out := roundTrip(t, `main ?a + 2 * 3 == 7 and not ?b -> <r, ?a - -1> end`)
	if !strings.Contains(out, "((?a + (2 * 3)) == 7)") {
		t.Errorf("precedence not explicit:\n%s", out)
	}
	if !strings.Contains(out, "(?a - (-1))") {
		t.Errorf("unary minus formatting:\n%s", out)
	}
}

func TestFormatComputedPatternFieldsReparse(t *testing.T) {
	// Parenthesized computed fields must survive the additive-level field
	// grammar on re-parse.
	roundTrip(t, `process S(k, j) behavior
  <k - pow2(j - 1), ?a, j>! => <k, ?a, j + 1>
end`)
}

func TestFormatStringsAndFloats(t *testing.T) {
	out := roundTrip(t, `main -> <msg, "hi there", 1.5, true, false> end`)
	if !strings.Contains(out, `"hi there"`) || !strings.Contains(out, "1.5") {
		t.Errorf("literal formatting:\n%s", out)
	}
}

// All shipped .sdl examples must round-trip through the formatter.
func TestFormatExampleFiles(t *testing.T) {
	files, err := filepath.Glob("../../examples/sdl/*.sdl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no example files found")
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			roundTrip(t, string(src))
		})
	}
}
