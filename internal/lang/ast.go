package lang

import "github.com/sdl-lang/sdl/internal/tuple"

// Program is a parsed SDL source file: process definitions plus an
// optional main block (the initial process).
type Program struct {
	Processes []*ProcessDecl
	Main      *MainDecl
}

// ProcessDecl is a `process Name(params) [import …] [export …]
// behavior … end` definition.
type ProcessDecl struct {
	Name    string
	Params  []string
	Imports []ViewRule // empty = import everything
	Exports []ViewRule // empty = export everything
	Body    []StmtNode
	Pos     Pos
}

// MainDecl is the `main … end` block.
type MainDecl struct {
	Body []StmtNode
	Pos  Pos
}

// ViewRule is one import/export rule: a tuple pattern with an optional
// guard predicate (the paper's `α : α ≤ 87 :: <year, α>`).
type ViewRule struct {
	Pattern PatternNode
	Where   ExprNode
	Pos     Pos
}

// StmtNode is one behavior statement.
type StmtNode interface{ stmtNode() }

// TxnNode is a transaction statement.
type TxnNode struct {
	Quant      QuantKind
	DeclVars   []string // variables declared by the quantifier prefix
	DeclVarPos []Pos    // positions of the declarations, parallel to DeclVars
	Items      []QueryItem
	Where      ExprNode
	Tag        TagKind
	Actions    []ActionNode
	Pos        Pos
}

// SelNode, RepNode, ParNode are the selection, repetition, and
// replication constructs.
type (
	SelNode struct {
		Branches []BranchNode
		Pos      Pos
	}
	RepNode struct {
		Branches []BranchNode
		Pos      Pos
	}
	ParNode struct {
		Branches []BranchNode
		Pos      Pos
	}
)

func (*TxnNode) stmtNode() {}
func (*SelNode) stmtNode() {}
func (*RepNode) stmtNode() {}
func (*ParNode) stmtNode() {}

// BranchNode is one guarded sequence.
type BranchNode struct {
	Guard *TxnNode
	Body  []StmtNode
}

// QuantKind is the query quantifier.
type QuantKind uint8

// Quantifiers; QuantDefault means none written (treated as exists).
const (
	QuantDefault QuantKind = iota
	QuantExists
	QuantForall
)

// TagKind is the transaction's operational tag.
type TagKind uint8

// Tags.
const (
	TagImmediate TagKind = iota + 1 // ->
	TagDelayed                      // =>
	TagConsensus                    // @>
)

// QueryItem is one pattern of a binding query.
type QueryItem struct {
	Pattern PatternNode
	Negated bool
	Retract bool
	Pos     Pos // start of the item ('not' keyword or the pattern itself)
}

// PatternNode is a tuple pattern literal.
type PatternNode struct {
	Fields []FieldNode
	Pos    Pos
}

// FieldNode is one field of a pattern: a wildcard or an expression
// (classified as variable / constant / computed at compile time).
type FieldNode interface{ fieldNode() }

// WildField is '*'.
type WildField struct{ Pos Pos }

// ExprField is any other field.
type ExprField struct{ Expr ExprNode }

func (WildField) fieldNode() {}
func (ExprField) fieldNode() {}

// ActionNode is one element of an action list.
type ActionNode interface{ actionNode() }

// Action forms.
type (
	// AssertAction asserts a tuple built from the pattern.
	AssertAction struct{ Pattern PatternNode }
	// LetAction binds a process constant.
	LetAction struct {
		Name string
		Expr ExprNode
		Pos  Pos
	}
	// SpawnAction creates a process instance.
	SpawnAction struct {
		Name string
		Args []ExprNode
		Pos  Pos
	}
	// ExitAction terminates the guarded sequence and repetition.
	ExitAction struct{ Pos Pos }
	// AbortAction terminates the process.
	AbortAction struct{ Pos Pos }
	// SkipAction does nothing.
	SkipAction struct{ Pos Pos }
)

func (AssertAction) actionNode() {}
func (LetAction) actionNode()    {}
func (SpawnAction) actionNode()  {}
func (ExitAction) actionNode()   {}
func (AbortAction) actionNode()  {}
func (SkipAction) actionNode()   {}

// ExprNode is an expression.
type ExprNode interface{ exprNode() }

// Expression forms.
type (
	// LitNode is a literal value (number, string, bool).
	LitNode struct {
		Value tuple.Value
		Pos   Pos
	}
	// IdentNode is a bare identifier: an atom, or a reference to a
	// parameter / let-constant / declared variable.
	IdentNode struct {
		Name string
		Pos  Pos
	}
	// VarNode is a '?x' quantified variable reference.
	VarNode struct {
		Name string
		Pos  Pos
	}
	// BinNode is a binary operation (operator named by token kind).
	BinNode struct {
		Op   TokKind
		L, R ExprNode
		Pos  Pos
	}
	// UnNode is unary minus or logical not.
	UnNode struct {
		Op  TokKind
		X   ExprNode
		Pos Pos
	}
	// CallNode is a built-in function call.
	CallNode struct {
		Name string
		Args []ExprNode
		Pos  Pos
	}
)

func (*LitNode) exprNode()   {}
func (*IdentNode) exprNode() {}
func (*VarNode) exprNode()   {}
func (*BinNode) exprNode()   {}
func (*UnNode) exprNode()    {}
func (*CallNode) exprNode()  {}
