// Package regionlabel implements the paper's §3.3 computer-vision example
// — threshold an image and label its 4-connected regions — in both of the
// programming styles the paper contrasts:
//
//   - The worker model (Threshold_and_label): one process issuing many
//     parallel transactions through a replication construct. Labeled
//     regions "are not available for further processing until the entire
//     program completes execution".
//
//   - The community model (Threshold + one Label process per pixel):
//     each Label process has a dynamic, dataspace-dependent view covering
//     its own pixel and the same-region neighbours; communities of Label
//     processes — one per region, formed by import-set overlap — work
//     asynchronously and detect per-region completion with a consensus
//     transaction, making each region available as soon as it is done.
//
// Tuple schema (pixel id leads, so the dataspace index buckets per pixel):
//
//	<p, image, v>      raw intensity
//	<p, threshold, t>  thresholded class (0 or 1)
//	<p, label, l>      current label
//	<p1, p2>           4-connectivity (worker model only)
package regionlabel

import (
	"context"
	"fmt"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
	"github.com/sdl-lang/sdl/internal/workload"
)

// Atoms of the schema.
var (
	atomImage     = tuple.Atom("image")
	atomThreshold = tuple.Atom("threshold")
	atomLabel     = tuple.Atom("label")
)

// Result reports a labeling run.
type Result struct {
	// Labels is the final label per pixel (row-major).
	Labels []int64
	// Regions is the number of distinct regions labeled.
	Regions int
	// Total is the wall-clock time for the full labeling.
	Total time.Duration
	// FirstRegion is the wall-clock time until the first region was
	// *known complete*. In the worker model no such signal exists before
	// the program ends, so FirstRegion == Total; the community model's
	// per-region consensus delivers it earlier.
	FirstRegion time.Duration
}

// loadImageTuples asserts <p, image, v> for every pixel.
func loadImageTuples(s *dataspace.Store, im *workload.Image) {
	ts := make([]tuple.Tuple, 0, im.W*im.H)
	for p := int64(0); p < int64(im.W*im.H); p++ {
		ts = append(ts, tuple.New(tuple.Int(p), atomImage, tuple.Int(im.Pix[p])))
	}
	s.Assert(tuple.Environment, ts...)
}

// loadAdjacency asserts <p1, p2> for every 4-connected pair (both
// directions).
func loadAdjacency(s *dataspace.Store, im *workload.Image) {
	var ts []tuple.Tuple
	for p := int64(0); p < int64(im.W*im.H); p++ {
		for _, q := range im.Neighbors4(p) {
			ts = append(ts, tuple.New(tuple.Int(p), tuple.Int(q)))
		}
	}
	s.Assert(tuple.Environment, ts...)
}

// readLabels extracts the <p, label, l> tuples into a dense slice.
func readLabels(s *dataspace.Store, n int) ([]int64, error) {
	labels := make([]int64, n)
	seen := 0
	var badTuple error
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			t := inst.Tuple
			if t.Arity() != 3 || !t.Field(1).Equal(atomLabel) {
				return true
			}
			p, ok1 := t.Field(0).AsInt()
			l, ok2 := t.Field(2).AsInt()
			if !ok1 || !ok2 || p < 0 || p >= int64(n) {
				badTuple = fmt.Errorf("regionlabel: bad label tuple %v", t)
				return false
			}
			labels[p] = l
			seen++
			return true
		})
	})
	if badTuple != nil {
		return nil, badTuple
	}
	if seen != n {
		return nil, fmt.Errorf("regionlabel: %d of %d pixels labeled", seen, n)
	}
	return labels, nil
}

// WorkerDef builds the single-process worker-model program
// (Threshold_and_label) for the given threshold cut: a replication whose
// guards threshold pixels and propagate the largest label across equal-
// threshold 4-neighbours.
func WorkerDef(cut int64) *process.Definition {
	cutLit := expr.Const(tuple.Int(cut))
	thresholdBranch := func(test expr.Expr, class int64) process.Branch {
		return process.Branch{Guard: process.Transact{
			Kind: process.Immediate,
			Query: pattern.Q(
				pattern.R(pattern.V("p"), pattern.C(atomImage), pattern.V("v")),
			).Where(test),
			Asserts: []pattern.Pattern{
				pattern.P(pattern.V("p"), pattern.C(atomThreshold), pattern.C(tuple.Int(class))),
				pattern.P(pattern.V("p"), pattern.C(atomLabel), pattern.V("p")),
			},
		}}
	}
	// Propagation: neighbours with equal threshold class and a larger
	// label overwrite this pixel's label (the label of the largest
	// xy-coordinate wins region-wide).
	propagate := process.Branch{Guard: process.Transact{
		Kind: process.Immediate,
		Query: pattern.Q(
			pattern.R(pattern.V("p1"), pattern.C(atomLabel), pattern.V("l1")),
			pattern.P(pattern.V("p1"), pattern.V("p2")),
			pattern.P(pattern.V("p2"), pattern.C(atomLabel), pattern.V("l2")).
				Guarded(expr.Gt(expr.V("l2"), expr.V("l1"))),
			pattern.P(pattern.V("p1"), pattern.C(atomThreshold), pattern.V("t")),
			pattern.P(pattern.V("p2"), pattern.C(atomThreshold), pattern.V("t")),
		),
		Asserts: []pattern.Pattern{
			pattern.P(pattern.V("p1"), pattern.C(atomLabel), pattern.V("l2")),
		},
	}}
	return &process.Definition{
		Name: "ThresholdAndLabel",
		Body: []process.Stmt{process.Replicate{Branches: []process.Branch{
			thresholdBranch(expr.Ge(expr.V("v"), cutLit), 1),
			thresholdBranch(expr.Lt(expr.V("v"), cutLit), 0),
			propagate,
		}}},
	}
}

// RunWorker executes the worker model and returns the labeling.
func RunWorker(ctx context.Context, rt *process.Runtime, im *workload.Image, cut int64) (Result, error) {
	s := rt.Engine().Store()
	loadImageTuples(s, im)
	loadAdjacency(s, im)
	if err := rt.Define(WorkerDef(cut)); err != nil {
		return Result{}, err
	}
	start := time.Now()
	if _, err := rt.Spawn("ThresholdAndLabel"); err != nil {
		return Result{}, err
	}
	if err := rt.WaitCtx(ctx); err != nil {
		return Result{}, err
	}
	if errs := rt.Errors(); len(errs) > 0 {
		return Result{}, fmt.Errorf("regionlabel: worker: %w", errs[0])
	}
	total := time.Since(start)
	labels, err := readLabels(s, im.W*im.H)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Labels:      labels,
		Regions:     workload.RegionCount(labels),
		Total:       total,
		FirstRegion: total, // no earlier completion signal in this model
	}, nil
}

// labelMatcher is the Label process's dynamic import: it admits the
// pixel's own tuples, neighbouring image tuples (so the process can detect
// when the neighbourhood is fully thresholded), and the threshold/label
// tuples of same-class neighbours — the dataspace-dependent import the
// paper uses to confine each community to one region.
//
// The matcher is *bounded*: every admissible tuple leads with one of at
// most five known pixel ids, so window scans and consensus-set
// materialization touch only those index buckets (O(1) per process instead
// of O(|D|) — the difference between a usable and an unusable community
// model, measured by E4).
type labelMatcher struct {
	r          int64
	t          tuple.Value
	neighbours map[int64]bool
	leads      []tuple.Value
}

// Admits implements view.Matcher.
func (m labelMatcher) Admits(rd dataspace.Reader, _ expr.Env, tp tuple.Tuple) bool {
	if tp.Arity() != 3 {
		return false
	}
	p, ok := tp.Field(0).AsInt()
	if !ok {
		return false
	}
	if p == m.r {
		return true
	}
	if !m.neighbours[p] {
		return false
	}
	tag := tp.Field(1)
	switch {
	case tag.Equal(atomImage):
		return true
	case tag.Equal(atomThreshold):
		return tp.Field(2).Equal(m.t)
	case tag.Equal(atomLabel):
		// Same region iff the neighbour's threshold class equals ours
		// *in the current configuration* — the view depends on the
		// dataspace.
		same := false
		rd.Scan(3, tuple.Int(p), true, func(_ tuple.ID, u tuple.Tuple) bool {
			if u.Field(1).Equal(atomThreshold) {
				same = u.Field(2).Equal(m.t)
				return false
			}
			return true
		})
		return same
	default:
		return false
	}
}

// Restriction implements view.Matcher: arity-3 tuples led by the pixel or
// one of its 4-neighbours.
func (m labelMatcher) Restriction(_ expr.Env, arity int) ([]tuple.Value, bool, bool) {
	if arity != 3 {
		return nil, false, true
	}
	return m.leads, true, true
}

// Arities implements view.Matcher.
func (m labelMatcher) Arities() ([]int, bool) { return []int{3}, false }

func labelView(im *workload.Image) process.ViewFunc {
	return func(env expr.Env) view.View {
		r, _ := env["r"].AsInt()
		m := labelMatcher{
			r:          r,
			t:          env["t"],
			neighbours: make(map[int64]bool, 4),
			leads:      []tuple.Value{tuple.Int(r)},
		}
		for _, q := range im.Neighbors4(r) {
			m.neighbours[q] = true
			m.leads = append(m.leads, tuple.Int(q))
		}
		return view.New(view.Union(m), view.Everything())
	}
}

// LabelDef builds the community-model Label(r, t) process.
//
//	PROCESS Label(r, t)  [dynamic IMPORT as above]
//	  → (r, label, r)
//	  ¬∃ <*, image, *>  ⇒ skip          // neighbourhood fully thresholded
//	  rep {
//	    ∃λ,q,λ': (r,label,λ)!, (q,label,λ') : λ' > λ → (r,label,λ')
//	  | ∃λ: (r,label,λ), (r,threshold,t)!,
//	        ¬∃ q,λ': (q,label,λ') ∧ λ' ≠ λ        ⇑ exit
//	  }
//
// The consensus guard reads "every label in my window equals mine"; since
// the window covers exactly the same-region neighbourhood, the consensus
// set is the region's community and the composite discards the region's
// threshold tuples, completing the region.
func LabelDef(im *workload.Image) *process.Definition {
	propagate := process.Branch{Guard: process.Transact{
		Kind: process.Immediate,
		Query: pattern.Q(
			pattern.R(pattern.V("r"), pattern.C(atomLabel), pattern.V("l")),
			pattern.P(pattern.V("q"), pattern.C(atomLabel), pattern.V("l2")).
				Guarded(expr.Gt(expr.V("l2"), expr.V("l"))),
		),
		Asserts: []pattern.Pattern{
			pattern.P(pattern.V("r"), pattern.C(atomLabel), pattern.V("l2")),
		},
	}}
	complete := process.Branch{Guard: process.Transact{
		Kind: process.Consensus,
		Query: pattern.Q(
			pattern.P(pattern.V("r"), pattern.C(atomLabel), pattern.V("l")),
			pattern.R(pattern.V("r"), pattern.C(atomThreshold), pattern.V("t")),
			pattern.N(pattern.W(), pattern.C(atomLabel), pattern.V("l2")).
				Guarded(expr.Ne(expr.V("l2"), expr.V("l"))),
		),
		Actions: []process.Action{process.Exit{}},
	}}
	return &process.Definition{
		Name:   "Label",
		Params: []string{"r", "t"},
		View:   labelView(im),
		Body: []process.Stmt{
			process.Transact{
				Kind:  process.Immediate,
				Query: pattern.Query{Quant: pattern.Exists},
				Asserts: []pattern.Pattern{
					pattern.P(pattern.V("r"), pattern.C(atomLabel), pattern.V("r")),
				},
			},
			process.Transact{
				Kind:  process.Delayed,
				Query: pattern.Q(pattern.N(pattern.W(), pattern.C(atomImage), pattern.W())),
			},
			process.Repeat{Branches: []process.Branch{propagate, complete}},
		},
	}
}

// RunCommunity executes the community model: a threshold pass that spawns
// one Label process per pixel, then per-region asynchronous labeling with
// consensus-detected completion.
func RunCommunity(ctx context.Context, rt *process.Runtime, im *workload.Image, cut int64) (Result, error) {
	s := rt.Engine().Store()
	loadImageTuples(s, im)
	if err := rt.Define(LabelDef(im)); err != nil {
		return Result{}, err
	}

	// Completion probe: a commit that deletes threshold tuples is a
	// region's consensus firing.
	start := time.Now()
	var firstRegion time.Duration
	s.OnCommit(func(rec dataspace.CommitRecord) {
		if firstRegion != 0 {
			return
		}
		for _, del := range rec.Deleted {
			if del.Tuple.Arity() == 3 && del.Tuple.Field(1).Equal(atomThreshold) {
				firstRegion = time.Since(start)
				return
			}
		}
	})

	// Threshold pass (the paper's Threshold process): threshold each pixel,
	// then create the Label community as a group. A region's completion is a
	// consensus over every Label process in the region, so all members must
	// be registered before any starts — spawning per pixel would let an
	// early part of a region reach consensus before its last pixel's
	// process exists.
	engine := rt.Engine()
	reqs := make([]process.SpawnReq, 0, im.W*im.H)
	for p := int64(0); p < int64(im.W*im.H); p++ {
		class := workload.Threshold(im.Pix[p], cut)
		res, err := engine.Immediate(txn.Request{
			Proc: tuple.Environment,
			View: view.Universal(),
			Query: pattern.Q(pattern.R(
				pattern.C(tuple.Int(p)), pattern.C(atomImage), pattern.W())),
			Asserts: []pattern.Pattern{pattern.P(
				pattern.C(tuple.Int(p)), pattern.C(atomThreshold), pattern.C(tuple.Int(class)))},
		})
		if err != nil {
			return Result{}, err
		}
		if !res.OK {
			return Result{}, fmt.Errorf("regionlabel: pixel %d has no image tuple", p)
		}
		reqs = append(reqs, process.SpawnReq{
			Type: "Label",
			Args: []tuple.Value{tuple.Int(p), tuple.Int(class)},
		})
	}
	if _, err := rt.SpawnGroup(reqs); err != nil {
		return Result{}, err
	}

	if err := rt.WaitCtx(ctx); err != nil {
		return Result{}, err
	}
	if errs := rt.Errors(); len(errs) > 0 {
		return Result{}, fmt.Errorf("regionlabel: community: %w", errs[0])
	}
	total := time.Since(start)
	if firstRegion == 0 {
		firstRegion = total
	}
	labels, err := readLabels(s, im.W*im.H)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Labels:      labels,
		Regions:     workload.RegionCount(labels),
		Total:       total,
		FirstRegion: firstRegion,
	}, nil
}
