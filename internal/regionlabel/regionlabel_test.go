package regionlabel

import (
	"context"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/workload"
)

const cut = 100

func newRT(t *testing.T, mode txn.Mode) *process.Runtime {
	t.Helper()
	s := dataspace.New()
	rt := process.NewRuntime(txn.New(s, mode), nil)
	t.Cleanup(func() {
		rt.Shutdown()
		rt.Consensus().Close()
	})
	return rt
}

func checkAgainstReference(t *testing.T, im *workload.Image, got []int64) {
	t.Helper()
	want := workload.ReferenceLabels(im, cut)
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("pixel %d: label %d, want %d", p, got[p], want[p])
		}
	}
}

func TestWorkerModelMatchesReference(t *testing.T) {
	for _, tc := range []struct{ w, h, blobs int }{
		{4, 4, 1},
		{8, 8, 2},
		{12, 12, 3},
	} {
		im := workload.GenImage(tc.w, tc.h, tc.blobs, int64(tc.w*tc.h))
		rt := newRT(t, txn.Coarse)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res, err := RunWorker(ctx, rt, im, cut)
		cancel()
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.w, tc.h, err)
		}
		checkAgainstReference(t, im, res.Labels)
		if res.Regions != workload.RegionCount(workload.ReferenceLabels(im, cut)) {
			t.Errorf("%dx%d: regions = %d", tc.w, tc.h, res.Regions)
		}
		if res.FirstRegion != res.Total {
			t.Error("worker model has no early completion signal")
		}
	}
}

func TestWorkerModelUniformImage(t *testing.T) {
	im := &workload.Image{W: 4, H: 3, Pix: make([]int64, 12)}
	rt := newRT(t, txn.Coarse)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := RunWorker(ctx, rt, im, cut)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != 1 {
		t.Errorf("regions = %d", res.Regions)
	}
	for _, l := range res.Labels {
		if l != 11 {
			t.Fatalf("labels = %v", res.Labels)
		}
	}
}

func TestCommunityModelMatchesReference(t *testing.T) {
	for _, tc := range []struct{ w, h, blobs int }{
		{3, 3, 1},
		{6, 6, 2},
		{8, 8, 2},
	} {
		im := workload.GenImage(tc.w, tc.h, tc.blobs, int64(tc.w+tc.h))
		rt := newRT(t, txn.Coarse)
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		res, err := RunCommunity(ctx, rt, im, cut)
		cancel()
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.w, tc.h, err)
		}
		checkAgainstReference(t, im, res.Labels)
		want := workload.RegionCount(workload.ReferenceLabels(im, cut))
		if res.Regions != want {
			t.Errorf("%dx%d: regions = %d, want %d", tc.w, tc.h, res.Regions, want)
		}
		// One consensus firing per region.
		if fires := rt.Consensus().Fires(); int(fires) != want {
			t.Errorf("%dx%d: consensus fires = %d, want %d", tc.w, tc.h, fires, want)
		}
		if res.FirstRegion > res.Total {
			t.Error("first region after total?")
		}
	}
}

func TestCommunitySinglePixel(t *testing.T) {
	im := &workload.Image{W: 1, H: 1, Pix: []int64{200}}
	rt := newRT(t, txn.Coarse)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := RunCommunity(ctx, rt, im, cut)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != 1 || res.Labels[0] != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestCommunityThresholdsDiscarded(t *testing.T) {
	// "When the labeling is complete in a given region, the threshold
	// values are discarded."
	im := workload.GenImage(5, 5, 1, 3)
	rt := newRT(t, txn.Coarse)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := RunCommunity(ctx, rt, im, cut); err != nil {
		t.Fatal(err)
	}
	s := rt.Engine().Store()
	count := 0
	s.Snapshot(func(r dataspace.Reader) {
		r.Each(func(inst dataspace.Instance) bool {
			if inst.Tuple.Arity() == 3 && inst.Tuple.Field(1).Equal(atomThreshold) {
				count++
			}
			return true
		})
	})
	if count != 0 {
		t.Errorf("%d threshold tuples left", count)
	}
}

func TestWorkerOptimisticMode(t *testing.T) {
	im := workload.GenImage(8, 8, 2, 99)
	rt := newRT(t, txn.Optimistic)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := RunWorker(ctx, rt, im, cut)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, im, res.Labels)
}
