module github.com/sdl-lang/sdl

go 1.22
