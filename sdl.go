// Package sdl is a Go implementation of SDL — the Shared Dataspace
// Language of Roman, Cunningham & Ehlers ("A Shared Dataspace Language
// Supporting Large-Scale Concurrency", ICDCS 1988 / WUCS-88-09).
//
// SDL programs describe a computation as a content-addressable dataspace
// (a multiset of tuples) transformed by a society of concurrent processes
// issuing atomic transactions. The package re-exports the full runtime:
//
//   - values, tuples, and instance identity (Atom, Int, NewTuple, …)
//   - the indexed dataspace store (NewStore)
//   - patterns and queries (P/R/N fields, Exists/ForAll)
//   - programmer-defined views (import/export clauses, dynamic matchers)
//   - the transaction engine: immediate ('→'), delayed ('⇒') and
//     consensus ('⇑') transactions, with coarse or optimistic
//     concurrency control
//   - the process runtime: definitions, dynamic spawn, sequence,
//     selection, repetition and replication constructs
//   - tracing and replay of the dataspace evolution
//
// The quickest entry point is New, which assembles a complete System:
//
//	sys := sdl.New(sdl.Options{})
//	defer sys.Close()
//	sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Atom("year"), sdl.Int(87)))
//
// See examples/ for complete programs, including the paper's array
// summation, property list, and region labeling examples.
package sdl

import (
	"github.com/sdl-lang/sdl/internal/consensus"
	"github.com/sdl-lang/sdl/internal/dataspace"
	"github.com/sdl-lang/sdl/internal/expr"
	"github.com/sdl-lang/sdl/internal/metrics"
	"github.com/sdl-lang/sdl/internal/pattern"
	"github.com/sdl-lang/sdl/internal/process"
	"github.com/sdl-lang/sdl/internal/sched"
	"github.com/sdl-lang/sdl/internal/trace"
	"github.com/sdl-lang/sdl/internal/tuple"
	"github.com/sdl-lang/sdl/internal/txn"
	"github.com/sdl-lang/sdl/internal/view"
	"github.com/sdl-lang/sdl/internal/vis"
	"github.com/sdl-lang/sdl/internal/wal"
)

// Values and tuples.
type (
	// Value is a single field of a tuple: an atom, int, float, string, or
	// bool.
	Value = tuple.Value
	// Tuple is an immutable finite sequence of values.
	Tuple = tuple.Tuple
	// TupleID uniquely identifies one tuple instance in a dataspace.
	TupleID = tuple.ID
	// ProcessID identifies a process in the process society.
	ProcessID = tuple.ProcessID
)

// Value constructors.
var (
	// Atom returns a symbolic constant value.
	Atom = tuple.Atom
	// Int returns an integer value.
	Int = tuple.Int
	// Float returns a floating-point value.
	Float = tuple.Float
	// Str returns a string value.
	Str = tuple.String
	// Bool returns a boolean value.
	Bool = tuple.Bool
	// NewTuple builds a tuple from values.
	NewTuple = tuple.New
	// MakeTuple builds a tuple from native Go values.
	MakeTuple = tuple.Make
)

// Environment is the pseudo-process owning initial dataspace contents.
const Environment = tuple.Environment

// Dataspace.
type (
	// Store is the shared dataspace.
	Store = dataspace.Store
	// Instance pairs a tuple with its identifier and owner.
	Instance = dataspace.Instance
	// Reader provides read access to one dataspace configuration.
	Reader = dataspace.Reader
)

// NewStore returns an empty dataspace.
var NewStore = dataspace.New

// StoreOption configures NewStore.
type StoreOption = dataspace.Option

// WithShards sets the store's shard count: rounded up to a power of two
// and clamped to [1, 256]; zero or negative selects a GOMAXPROCS-based
// default. Transactions whose patterns name their lead field lock only
// the shards they touch, so disjoint transactions commit in parallel.
var WithShards = dataspace.WithShards

// WithCommuting enables or disables the commutativity-aware commit path
// (per-key latches, group commit, epoch reads; on by default). Disabling
// it demotes every planned commit to shard-level locking — the ablation
// baseline of experiment E13.
var WithCommuting = dataspace.WithCommuting

// WithReactive enables or disables delta-driven wakeups (on by default).
// When on, blocked delayed transactions whose guards are delta-safe
// re-evaluate only against the tuples each commit changed, and commits
// whose deltas cannot affect a guard do not wake it at all. Disabling it
// restores the wake-on-any-covering-commit baseline of experiment E16.
var WithReactive = dataspace.WithReactive

// WithSecondaryIndex enables or disables adaptive secondary field indexes
// and selectivity-guided join planning (on by default). When on, scan
// shapes with an unknown lead but constrained non-lead fields are promoted
// to per-(arity, field-pos, value) indexes once hot, and the join planner
// orders patterns by estimated candidates visited. Disabling it restores
// full arity scans and the boundness heuristic — the ablation baseline of
// experiment E17.
var WithSecondaryIndex = dataspace.WithSecondaryIndex

// Expressions (test queries, computed fields, action arguments).
type (
	// Expr is a side-effect-free expression over variable bindings.
	Expr = expr.Expr
	// Env holds variable bindings.
	Env = expr.Env
)

// Expression constructors.
var (
	// X references a variable.
	X = expr.V
	// Lit wraps a value as a literal expression.
	Lit = expr.Const
	// Arithmetic, comparison, and logical operators.
	Add = expr.Add
	Sub = expr.Sub
	Mul = expr.Mul
	Div = expr.Div
	Mod = expr.Mod
	Eq  = expr.Eq
	Ne  = expr.Ne
	Lt  = expr.Lt
	Le  = expr.Le
	Gt  = expr.Gt
	Ge  = expr.Ge
	And = expr.And
	Or  = expr.Or
	Not = expr.Not
	// Call invokes a built-in function (abs, min, max, pow2, int).
	Call = expr.Fn
)

// Patterns and queries.
type (
	// Field is one position of a tuple pattern.
	Field = pattern.Field
	// Pattern is one tuple pattern in a binding query.
	Pattern = pattern.Pattern
	// Query is a complete SDL query.
	Query = pattern.Query
	// Binding is one query solution.
	Binding = pattern.Binding
)

// Pattern constructors.
var (
	// C is a constant field; W a wildcard ('*'); V a variable; E a field
	// computed from earlier bindings.
	C = pattern.C
	W = pattern.W
	V = pattern.V
	E = pattern.E
	// P builds a read pattern; R a retract-tagged pattern ('↑'); N a
	// negated pattern ('¬').
	P = pattern.P
	R = pattern.R
	N = pattern.N
	// Q builds an existential query; QAll a universal one.
	Q    = pattern.Q
	QAll = pattern.QAll
)

// Views.
type (
	// View pairs import and export clauses.
	View = view.View
	// Clause is one side of a view.
	Clause = view.Clause
	// Matcher decides clause membership.
	Matcher = view.Matcher
)

// View constructors.
var (
	// Universal is the unrestricted view.
	Universal = view.Universal
	// NewView builds a view from import and export clauses.
	NewView = view.New
	// Everything is the universal clause; Union a clause of matchers.
	Everything = view.Everything
	Union      = view.Union
	// Pat admits tuples matching a pattern; PatWhere adds a predicate;
	// Dyn admits via an arbitrary dataspace-dependent function.
	Pat      = view.Pat
	PatWhere = view.PatWhere
	Dyn      = view.Dyn
)

// Transactions.
type (
	// Engine executes transactions against a store.
	Engine = txn.Engine
	// Request describes one transaction.
	Request = txn.Request
	// Result reports a transaction outcome.
	Result = txn.Result
	// Mode selects the concurrency-control strategy.
	Mode = txn.Mode
)

// Engine construction and modes.
var NewEngine = txn.New

// Concurrency-control modes and export policies.
const (
	// Coarse serializes transactions behind the store's write lock.
	Coarse = txn.Coarse
	// Optimistic validates a read-phase snapshot at commit time.
	Optimistic = txn.Optimistic
	// ExportDrop silently drops non-exportable assertions (the formal
	// semantics); ExportError fails the transaction instead.
	ExportDrop  = txn.ExportDrop
	ExportError = txn.ExportError
)

// Consensus.
type (
	// ConsensusManager coordinates consensus ('⇑') transactions.
	ConsensusManager = consensus.Manager
	// Offer is one pending consensus transaction.
	Offer = consensus.Offer
)

// NewConsensusManager creates a manager over an engine.
var NewConsensusManager = consensus.NewManager

// Processes.
type (
	// Runtime hosts a process society.
	Runtime = process.Runtime
	// Definition is a parameterized process type.
	Definition = process.Definition
	// Stmt is a behavior statement; Branch a guarded sequence.
	Stmt   = process.Stmt
	Branch = process.Branch
	// Statement forms.
	Transact  = process.Transact
	Select    = process.Select
	Repeat    = process.Repeat
	Replicate = process.Replicate
	// Actions.
	Action = process.Action
	Let    = process.Let
	Spawn  = process.Spawn
	Exit   = process.Exit
	Abort  = process.Abort
	// ViewFunc builds a process view from its parameters.
	ViewFunc = process.ViewFunc
	// ProcessInfo describes one live process; ProcessState its activity.
	ProcessInfo  = process.ProcessInfo
	ProcessState = process.State
)

// NewRuntime creates a process runtime over an engine.
var NewRuntime = process.NewRuntime

// Transaction kinds for Transact statements.
const (
	// Immediate ('→') evaluates once and either commits or has no effect.
	Immediate = process.Immediate
	// Delayed ('⇒') blocks until a successful evaluation is possible.
	Delayed = process.Delayed
	// Consensus ('⇑') joins the n-way synchronization of its consensus set.
	Consensus = process.Consensus
)

// Quantifiers.
const (
	// Exists picks an arbitrary single solution (∃).
	Exists = pattern.Exists
	// ForAll applies the composite of every solution (∀).
	ForAll = pattern.ForAll
)

// Tracing and visualization.
type (
	// Recorder logs dataspace evolution for debugging and replay.
	Recorder = trace.Recorder
	// TraceEvent is one assert/retract event.
	TraceEvent = trace.Event
	// CommitLog records whole commit events (version + effects) for
	// committed-history reconstruction and serializability audits.
	CommitLog = trace.CommitLog
	// Watcher is a decoupled visualization process: it samples consistent
	// dataspace snapshots on a cadence and renders them.
	Watcher = vis.Watcher
)

var (
	// NewRecorder creates a trace recorder (0 = unbounded).
	NewRecorder = trace.NewRecorder
	// NewCommitLog creates a commit-event log; Attach it to a store.
	NewCommitLog = trace.NewCommitLog
	// NewWatcher starts a snapshot-sampling observer.
	NewWatcher = vis.NewWatcher
)

// Deterministic schedule exploration.
type (
	// SchedController is a seedable deterministic scheduler and fault
	// injector. Installed via Options.Scheduler (or the WithScheduler
	// store option), it drives yields, wakeup-dispatch order, spurious
	// wakeups, forced optimistic retries, and delayed consensus signals
	// from a pure decision stream, so any interleaving it provokes can
	// be replayed from its seed. A nil controller leaves every hook as
	// a no-op.
	SchedController = sched.Controller
	// SchedFaults selects the perturbation probabilities (0-255 each).
	SchedFaults = sched.Faults
)

var (
	// NewScheduler creates a controller for the given seed and faults.
	NewScheduler = sched.New
	// Fault presets: no perturbation beyond deterministic decisions,
	// a light mix, and an aggressive mix for stress campaigns.
	SchedNoFaults = sched.NoFaults
	SchedLight    = sched.Light
	SchedHeavy    = sched.Heavy
	// WithScheduler installs a controller on a store built directly via
	// NewStore (System users set Options.Scheduler instead).
	WithScheduler = dataspace.WithScheduler
)

// Durability. The quickest entry point is Options.WALDir with Open; the
// re-exports below serve programs managing the log directly.
type (
	// WAL is a segmented, CRC-framed write-ahead log. Attached to a store
	// (Store.SetDurable), every commit is appended inside its critical
	// section and the committing transaction blocks until the record is
	// durable — before waiters or consensus signals can observe it.
	WAL = wal.Log
	// WALOptions configures OpenWAL (sync policy, segment size, interval).
	WALOptions = wal.Options
	// WALSyncMode selects when appended records are fsynced.
	WALSyncMode = wal.SyncMode
	// WALRecoveryStats reports what WAL.Recover reconstructed.
	WALRecoveryStats = wal.RecoveryStats
	// WALState is the pure read of a log directory's durable evidence
	// (checkpoint base plus decodable record suffix) used by crash-test
	// harnesses before recovery mutates the directory.
	WALState = wal.State
)

// Fsync policies.
const (
	// WALSyncCommit fsyncs every commit before it becomes visible.
	WALSyncCommit = wal.SyncCommit
	// WALSyncBatch amortizes: one fsync covers every record appended by
	// the group that was waiting, so concurrent commits share syncs.
	WALSyncBatch = wal.SyncBatch
	// WALSyncInterval fsyncs on a timer; commits do not wait (bounded
	// data loss on power failure, none on process crash).
	WALSyncInterval = wal.SyncInterval
)

var (
	// OpenWAL opens (or creates) a log directory. Recover into a fresh
	// store before attaching it to one that accepts commits.
	OpenWAL = wal.Open
	// ParseWALSyncMode maps "commit" | "batch" | "interval" to a mode.
	ParseWALSyncMode = wal.ParseSyncMode
	// ReadWALState reads a log directory without modifying it.
	ReadWALState = wal.ReadState
)

// Observability.
type (
	// MetricsRegistry is the runtime's metrics registry: low-overhead
	// counters, gauges, and histograms recorded by the store, engine, and
	// consensus manager. Obtain it with Store.Metrics or System.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = metrics.Snapshot
)
