package sdl_test

import (
	"context"
	"fmt"
	"sort"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

// The paper's §2.2 immediate transaction:
// ∃α: <year, α>↑ : α > 87 → (found, α).
func Example() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	sys.Store.Assert(sdl.Environment,
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(85)),
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(90)),
	)
	res, _ := sys.Immediate(sdl.Request{
		Proc: 1,
		View: sdl.Universal(),
		Query: sdl.Q(sdl.R(sdl.C(sdl.Atom("year")), sdl.V("a"))).
			Where(sdl.Gt(sdl.X("a"), sdl.Lit(sdl.Int(87)))),
		Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("found")), sdl.V("a"))},
	})
	fmt.Println(res.OK, res.Env["a"])
	// Output: true 90
}

// Views restrict what a process can see: with the paper's §2.1 import
// rule, years after 87 are invisible.
func ExampleView() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Atom("year"), sdl.Int(90)))
	historic := sdl.NewView(
		sdl.Union(sdl.PatWhere(
			sdl.P(sdl.C(sdl.Atom("year")), sdl.V("x")),
			sdl.Le(sdl.X("x"), sdl.Lit(sdl.Int(87))),
		)),
		sdl.Everything(),
	)
	res, _ := sys.Immediate(sdl.Request{
		Proc:  1,
		View:  historic,
		Query: sdl.Q(sdl.P(sdl.C(sdl.Atom("year")), sdl.V("a"))),
	})
	fmt.Println(res.OK)
	// Output: false
}

// A delayed transaction blocks until the dataspace enables it.
func ExampleSystem_Delayed() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	go func() {
		time.Sleep(10 * time.Millisecond)
		sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Atom("go"), sdl.Int(7)))
	}()
	res, _ := sys.Delayed(context.Background(), sdl.Request{
		Proc:  1,
		View:  sdl.Universal(),
		Query: sdl.Q(sdl.R(sdl.C(sdl.Atom("go")), sdl.V("n"))),
	})
	fmt.Println(res.OK, res.Env["n"])
	// Output: true 7
}

// Process definitions give behaviors to the society; Run spawns one and
// waits for the society to empty.
func ExampleSystem_Run() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	_ = sys.Define(&sdl.Definition{
		Name:   "Square",
		Params: []string{"n"},
		Body: []sdl.Stmt{sdl.Transact{
			Kind:  sdl.Immediate,
			Query: sdl.Query{Quant: sdl.Exists},
			Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("out")),
				sdl.E(sdl.Mul(sdl.X("n"), sdl.X("n"))))},
		}},
	})
	_ = sys.Run(context.Background(), "Square", sdl.Int(6))
	fmt.Println(sys.CollectInt(sdl.Atom("out")))
	// Output: [36]
}

// The replication construct: the paper's Sum3 in four lines of API.
func ExampleReplicate() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	for k, v := range []int64{10, 20, 30, 40} {
		sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Int(int64(k+1)), sdl.Int(v)))
	}
	_ = sys.Define(&sdl.Definition{
		Name: "Sum3",
		Body: []sdl.Stmt{sdl.Replicate{Branches: []sdl.Branch{{
			Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(
					sdl.R(sdl.V("n"), sdl.V("a")),
					sdl.R(sdl.V("m"), sdl.V("b")),
				).Where(sdl.Ne(sdl.X("n"), sdl.X("m"))),
				Asserts: []sdl.Pattern{sdl.P(sdl.V("m"), sdl.E(sdl.Add(sdl.X("a"), sdl.X("b"))))},
			},
		}}}},
	})
	_ = sys.Run(context.Background(), "Sum3")

	var sum int64
	sys.Store.Snapshot(func(r sdl.Reader) {
		r.Each(func(inst sdl.Instance) bool {
			sum, _ = inst.Tuple.Field(1).AsInt()
			return false
		})
	})
	fmt.Println(sum)
	// Output: 100
}

// A ∀ transaction applies the composite of all solutions atomically.
func ExampleForAll() {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	sys.Store.Assert(sdl.Environment,
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(85)),
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(90)),
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(95)),
	)
	res, _ := sys.Immediate(sdl.Request{
		Proc: 1,
		View: sdl.Universal(),
		Query: sdl.QAll(sdl.R(sdl.C(sdl.Atom("year")), sdl.V("a"))).
			Where(sdl.Gt(sdl.X("a"), sdl.Lit(sdl.Int(87)))),
		Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("old")), sdl.V("a"))},
	})
	got := sys.CollectInt(sdl.Atom("old"))
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	fmt.Println(res.OK, got)
	// Output: true [90 95]
}
