package sdl

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"
)

func TestSystemQuickFlow(t *testing.T) {
	sys := New(Options{Trace: -1})
	defer sys.Close()

	sys.Store.Assert(Environment, NewTuple(Atom("year"), Int(85)), NewTuple(Atom("year"), Int(90)))

	// The paper's immediate transaction through the facade.
	res, err := sys.Immediate(Request{
		Proc: 1,
		View: Universal(),
		Query: Q(R(C(Atom("year")), V("a"))).
			Where(Gt(X("a"), Lit(Int(87)))),
		Asserts: []Pattern{P(C(Atom("found")), V("a"))},
	})
	if err != nil || !res.OK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	found := sys.CollectInt(Atom("found"))
	if len(found) != 1 || found[0] != 90 {
		t.Errorf("found = %v", found)
	}
	if sys.Recorder == nil || sys.Recorder.Len() == 0 {
		t.Error("recorder did not observe the run")
	}
}

func TestSystemRunProcess(t *testing.T) {
	sys := New(Options{Mode: Optimistic})
	defer sys.Close()

	if err := sys.Define(&Definition{
		Name:   "Emit",
		Params: []string{"n"},
		Body: []Stmt{Transact{
			Kind:    Immediate,
			Query:   Query{Quant: Exists},
			Asserts: []Pattern{P(C(Atom("out")), V("n"))},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sys.Run(ctx, "Emit", Int(7)); err != nil {
		t.Fatal(err)
	}
	got := sys.CollectInt(Atom("out"))
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("out = %v", got)
	}
}

func TestSystemDelayedFacade(t *testing.T) {
	sys := New(Options{})
	defer sys.Close()

	done := make(chan []int64, 1)
	go func() {
		res, err := sys.Delayed(context.Background(), Request{
			Proc:  2,
			View:  Universal(),
			Query: Q(R(C(Atom("in")), V("x"))),
			Asserts: []Pattern{P(C(Atom("echo")),
				E(Mul(X("x"), Lit(Int(2)))))},
		})
		if err != nil || !res.OK {
			t.Errorf("res=%+v err=%v", res, err)
		}
		done <- sys.CollectInt(Atom("echo"))
	}()
	time.Sleep(10 * time.Millisecond)
	sys.Store.Assert(Environment, NewTuple(Atom("in"), Int(21)))
	select {
	case got := <-done:
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("echo = %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed transaction never fired")
	}
}

func TestSystemMultipleDefinitionsAndCollect(t *testing.T) {
	sys := New(Options{})
	defer sys.Close()

	emit := func(name string, v int64) *Definition {
		return &Definition{
			Name: name,
			Body: []Stmt{Transact{
				Kind:    Immediate,
				Query:   Query{Quant: Exists},
				Asserts: []Pattern{P(C(Atom("out")), C(Int(v)))},
			}},
		}
	}
	if err := sys.Define(emit("A", 1), emit("B", 2)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Define(emit("A", 9)); err == nil {
		t.Error("duplicate definition should fail")
	}
	if _, err := sys.SpawnVals("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SpawnVals("B"); err != nil {
		t.Fatal(err)
	}
	sys.Runtime.Wait()
	got := sys.CollectInt(Atom("out"))
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("out = %v", got)
	}
}

func TestSystemCloseReleasesGoroutines(t *testing.T) {
	// Creating and closing many systems must not leak goroutines
	// (detector loops, process goroutines, watcher loops).
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		sys := New(Options{Trace: 16})
		_ = sys.Define(&Definition{
			Name: "P",
			Body: []Stmt{Transact{
				Kind:  Delayed,
				Query: Q(P(C(Atom("never")))),
			}},
		})
		_, _ = sys.SpawnVals("P")
		w := NewWatcher(sys.Store, time.Millisecond, func(Reader) {})
		time.Sleep(time.Millisecond)
		w.Stop()
		sys.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: base=%d now=%d", base, runtime.NumGoroutine())
}
