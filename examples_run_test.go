package sdl_test

// Smoke-runs every Go example binary so the examples cannot rot. Skipped
// under -short (each runs a complete program through `go run`).

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, timeout time.Duration, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("%v timed out", args)
	}
	if err != nil {
		t.Fatalf("%v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExample(t, 2*time.Minute, "./examples/quickstart")
	for _, want := range []string{"membership <year, 87>: true", "delayed: fired for year 99", "trace:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExampleArraysum(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExample(t, 3*time.Minute, "./examples/arraysum", "-n", "64")
	if strings.Contains(out, "WRONG") || strings.Count(out, "OK") != 3 {
		t.Errorf("output:\n%s", out)
	}
}

func TestExampleProplist(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExample(t, 2*time.Minute, "./examples/proplist", "-n", "10")
	if !strings.Contains(out, "sorted values:") || !strings.Contains(out, "1 consensus firing") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExampleRegionlabel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExample(t, 5*time.Minute, "./examples/regionlabel", "-size", "8", "-blobs", "2")
	if !strings.Contains(out, "labeled regions") || !strings.Contains(out, "consensus firings") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExamplePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExample(t, 2*time.Minute, "./examples/pipeline", "-jobs", "20", "-workers", "3")
	if !strings.Contains(out, "sum of squares = 2870 (want 2870)") {
		t.Errorf("output:\n%s", out)
	}
}
