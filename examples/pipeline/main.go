// Pipeline is a producer/consumer program in the Linda-style "workers
// model" the paper references: producers generate job tuples, a pool of
// worker processes "seek work in the dataspace", square the payloads, and
// a collector gathers results. Views restrict what each process sees:
// workers cannot see the tally, and nobody but the collector touches it —
// demonstrating import windows alongside export filtering.
//
//	go run ./examples/pipeline [-jobs 50] [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

func main() {
	jobs := flag.Int("jobs", 50, "jobs to produce")
	workers := flag.Int("workers", 4, "worker processes")
	flag.Parse()
	if err := run(*jobs, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

var (
	job    = sdl.Atom("job")
	resAtm = sdl.Atom("res")
	eof    = sdl.Atom("eof")
	tally  = sdl.Atom("tally")
)

// producer emits <job, i, i> for i in [lo, hi) by counting down a local
// let-constant... SDL has no loops over integers, so the producer carries
// its range in the dataspace: <todo, i> tuples drive the repetition.
func producer() *sdl.Definition {
	return &sdl.Definition{
		Name: "Producer",
		Body: []sdl.Stmt{
			sdl.Repeat{Branches: []sdl.Branch{
				{Guard: sdl.Transact{
					Kind:    sdl.Immediate,
					Query:   sdl.Q(sdl.R(sdl.C(sdl.Atom("todo")), sdl.V("i"))),
					Asserts: []sdl.Pattern{sdl.P(sdl.C(job), sdl.V("i"), sdl.V("i"))},
				}},
			}},
			sdl.Transact{
				Kind:    sdl.Immediate,
				Query:   sdl.Query{Quant: sdl.Exists},
				Asserts: []sdl.Pattern{sdl.P(sdl.C(eof))},
			},
		},
	}
}

// worker repeatedly takes a job and asserts its squared result; it exits
// when the eof marker is visible and no jobs remain.
func worker() *sdl.Definition {
	jobsAndResults := sdl.Union(
		sdl.Pat(sdl.P(sdl.C(job), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.C(resAtm), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.C(eof))),
	)
	return &sdl.Definition{
		Name: "Worker",
		View: func(sdl.Env) sdl.View { return sdl.NewView(jobsAndResults, jobsAndResults) },
		Body: []sdl.Stmt{sdl.Repeat{Branches: []sdl.Branch{
			{Guard: sdl.Transact{
				Kind:  sdl.Delayed,
				Query: sdl.Q(sdl.R(sdl.C(job), sdl.V("i"), sdl.V("x"))),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(resAtm), sdl.V("i"),
					sdl.E(sdl.Mul(sdl.X("x"), sdl.X("x"))))},
			}},
			{Guard: sdl.Transact{
				Kind: sdl.Delayed,
				Query: sdl.Q(
					sdl.P(sdl.C(eof)),
					sdl.N(sdl.C(job), sdl.W(), sdl.W()),
				),
				Actions: []sdl.Action{sdl.Exit{}},
			}},
		}}},
	}
}

// collector folds results into a running <tally, sum, count> tuple. Its
// import must include job tuples: the exit guard's negation `not <job,*,*>`
// is evaluated against the window, so a view that hid jobs would make it
// vacuously true and let the collector exit while workers are still busy.
func collector() *sdl.Definition {
	resultsAndTally := sdl.Union(
		sdl.Pat(sdl.P(sdl.C(job), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.C(resAtm), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.C(tally), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.C(eof))),
	)
	return &sdl.Definition{
		Name: "Collector",
		View: func(sdl.Env) sdl.View { return sdl.NewView(resultsAndTally, resultsAndTally) },
		Body: []sdl.Stmt{sdl.Repeat{Branches: []sdl.Branch{
			{Guard: sdl.Transact{
				Kind: sdl.Delayed,
				Query: sdl.Q(
					sdl.R(sdl.C(resAtm), sdl.W(), sdl.V("v")),
					sdl.R(sdl.C(tally), sdl.V("sum"), sdl.V("cnt")),
				),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(tally),
					sdl.E(sdl.Add(sdl.X("sum"), sdl.X("v"))),
					sdl.E(sdl.Add(sdl.X("cnt"), sdl.Lit(sdl.Int(1)))))},
			}},
			{Guard: sdl.Transact{
				Kind: sdl.Delayed,
				Query: sdl.Q(
					sdl.P(sdl.C(eof)),
					sdl.N(sdl.C(resAtm), sdl.W(), sdl.W()),
					sdl.N(sdl.C(job), sdl.W(), sdl.W()),
				),
				Actions: []sdl.Action{sdl.Exit{}},
			}},
		}}},
	}
}

func run(jobs, workers int) error {
	sys := sdl.New(sdl.Options{})
	defer sys.Close()

	if err := sys.Define(producer(), worker(), collector()); err != nil {
		return err
	}
	for i := 0; i < jobs; i++ {
		sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Atom("todo"), sdl.Int(int64(i+1))))
	}
	sys.Store.Assert(sdl.Environment, sdl.NewTuple(tally, sdl.Int(0), sdl.Int(0)))

	start := time.Now()
	if _, err := sys.SpawnVals("Producer"); err != nil {
		return err
	}
	for w := 0; w < workers; w++ {
		if _, err := sys.SpawnVals("Worker"); err != nil {
			return err
		}
	}
	if _, err := sys.SpawnVals("Collector"); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sys.Runtime.WaitCtx(ctx); err != nil {
		return err
	}

	var sum, cnt int64
	sys.Store.Snapshot(func(r sdl.Reader) {
		r.Scan(3, tally, true, func(_ sdl.TupleID, t sdl.Tuple) bool {
			sum, _ = t.Field(1).AsInt()
			cnt, _ = t.Field(2).AsInt()
			return false
		})
	})
	var want int64
	for i := int64(1); i <= int64(jobs); i++ {
		want += i * i
	}
	fmt.Printf("%d jobs through %d workers in %v\n", jobs, workers,
		time.Since(start).Round(time.Microsecond))
	fmt.Printf("tally: sum of squares = %d (want %d), results = %d\n", sum, want, cnt)
	if sum != want || cnt != int64(jobs) {
		return fmt.Errorf("wrong tally")
	}
	return nil
}
