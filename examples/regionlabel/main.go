// Regionlabel runs the paper's §3.3 computer-vision example in both
// programming styles — the worker model (one process, many parallel
// transactions) and the community model (one Label process per pixel with
// a dynamic view, per-region consensus completion) — and renders the image
// and labeling as ASCII art.
//
// This example uses the repository's bundled example packages
// (internal/regionlabel, internal/workload, internal/vis) on top of the
// public runtime.
//
//	go run ./examples/regionlabel [-size 12] [-blobs 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sdl "github.com/sdl-lang/sdl"
	"github.com/sdl-lang/sdl/internal/regionlabel"
	"github.com/sdl-lang/sdl/internal/vis"
	"github.com/sdl-lang/sdl/internal/workload"
)

func main() {
	size := flag.Int("size", 12, "image side length")
	blobs := flag.Int("blobs", 3, "bright blobs in the synthetic image")
	flag.Parse()
	if err := run(*size, *blobs); err != nil {
		fmt.Fprintln(os.Stderr, "regionlabel:", err)
		os.Exit(1)
	}
}

func run(size, blobs int) error {
	const cut = 100
	im := workload.GenImage(size, size, blobs, 7)
	fmt.Println("input image (intensity):")
	fmt.Println(vis.RenderImage(im))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Worker model: a single Threshold_and_label process issuing many
	// parallel transactions via the replication construct.
	sysW := sdl.New(sdl.Options{})
	resW, err := regionlabel.RunWorker(ctx, sysW.Runtime, im, cut)
	sysW.Close()
	if err != nil {
		return fmt.Errorf("worker model: %w", err)
	}
	fmt.Printf("worker model: %d regions in %v (first region known at %v — only at the end)\n",
		resW.Regions, resW.Total.Round(time.Microsecond), resW.FirstRegion.Round(time.Microsecond))

	// Community model: one Label process per pixel; communities form per
	// region through dynamic import overlap; each region completes with
	// its own consensus transaction.
	sysC := sdl.New(sdl.Options{})
	resC, err := regionlabel.RunCommunity(ctx, sysC.Runtime, im, cut)
	fires := sysC.Cons.Fires()
	sysC.Close()
	if err != nil {
		return fmt.Errorf("community model: %w", err)
	}
	fmt.Printf("community model: %d regions in %v (first region known at %v, %d consensus firings)\n",
		resC.Regions, resC.Total.Round(time.Microsecond), resC.FirstRegion.Round(time.Microsecond), fires)

	// Both must agree with the reference flood fill.
	ref := workload.ReferenceLabels(im, cut)
	for p := range ref {
		if resW.Labels[p] != ref[p] || resC.Labels[p] != ref[p] {
			return fmt.Errorf("labeling mismatch at pixel %d", p)
		}
	}

	fmt.Println("\nlabeled regions (one letter per region):")
	fmt.Println(vis.RenderLabels(im.W, im.H, resC.Labels))
	fmt.Println(vis.RegionSummary(resC.Labels))
	return nil
}
