// Proplist runs the paper's §3.2 property-list programs: Search (one
// process per traversal hop, simulating recursion), Find (content-
// addressable lookup — "the preferred solution"), and the distributed Sort
// whose termination is a consensus transaction over the community of
// adjacent-pair processes.
//
//	go run ./examples/proplist [-n 24]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

func main() {
	n := flag.Int("n", 24, "list length")
	flag.Parse()
	if err := run(*n); err != nil {
		fmt.Fprintln(os.Stderr, "proplist:", err)
		os.Exit(1)
	}
}

var (
	nilAtom  = sdl.Atom("nil")
	result   = sdl.Atom("result")
	notFound = sdl.Atom("not_found")
)

// searchDef: PROCESS Search(id, P) — three mutually exclusive guards.
func searchDef() *sdl.Definition {
	return &sdl.Definition{
		Name:   "Search",
		Params: []string{"id", "P"},
		Body: []sdl.Stmt{sdl.Select{Branches: []sdl.Branch{
			{Guard: sdl.Transact{
				Kind:    sdl.Immediate,
				Query:   sdl.Q(sdl.P(sdl.V("id"), sdl.V("P"), sdl.V("v"), sdl.W())),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(result), sdl.V("P"), sdl.V("v"))},
			}},
			{Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(sdl.P(sdl.V("id"), sdl.V("pi"), sdl.W(), sdl.C(nilAtom))).
					Where(sdl.Ne(sdl.X("pi"), sdl.X("P"))),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(result), sdl.V("P"), sdl.C(notFound))},
			}},
			{Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(sdl.P(sdl.V("id"), sdl.V("pi"), sdl.W(), sdl.V("i"))).
					Where(sdl.And(
						sdl.Ne(sdl.X("pi"), sdl.X("P")),
						sdl.Ne(sdl.X("i"), sdl.Lit(nilAtom)),
					)),
				Actions: []sdl.Action{sdl.Spawn{Type: "Search",
					Args: []sdl.Expr{sdl.X("i"), sdl.X("P")}}},
			}},
		}}},
	}
}

// findDef: PROCESS Find(P) — addressing data by content.
func findDef() *sdl.Definition {
	return &sdl.Definition{
		Name:   "Find",
		Params: []string{"P"},
		Body: []sdl.Stmt{sdl.Select{Branches: []sdl.Branch{
			{Guard: sdl.Transact{
				Kind:    sdl.Immediate,
				Query:   sdl.Q(sdl.P(sdl.W(), sdl.V("P"), sdl.V("v"), sdl.W())),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(result), sdl.V("P"), sdl.V("v"))},
			}},
			{Guard: sdl.Transact{
				Kind:    sdl.Immediate,
				Query:   sdl.Q(sdl.N(sdl.W(), sdl.V("P"), sdl.W(), sdl.W())),
				Asserts: []sdl.Pattern{sdl.P(sdl.C(result), sdl.V("P"), sdl.C(notFound))},
			}},
		}}},
	}
}

// sortDef: PROCESS Sort(a, b) — swap when out of order; the consensus
// guard fires when every adjacent pair in the community is ordered.
func sortDef() *sdl.Definition {
	nodesView := sdl.Union(
		sdl.Pat(sdl.P(sdl.V("a"), sdl.W(), sdl.W(), sdl.W())),
		sdl.Pat(sdl.P(sdl.V("b"), sdl.W(), sdl.W(), sdl.W())),
	)
	return &sdl.Definition{
		Name:   "Sort",
		Params: []string{"a", "b"},
		View: func(sdl.Env) sdl.View {
			return sdl.NewView(nodesView, nodesView)
		},
		Body: []sdl.Stmt{sdl.Repeat{Branches: []sdl.Branch{
			{Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(
					sdl.R(sdl.V("a"), sdl.V("n1"), sdl.V("v1"), sdl.V("x")),
					sdl.R(sdl.V("b"), sdl.V("n2"), sdl.V("v2"), sdl.V("y")),
				).Where(sdl.Gt(sdl.X("v1"), sdl.X("v2"))),
				Asserts: []sdl.Pattern{
					sdl.P(sdl.V("a"), sdl.V("n2"), sdl.V("v2"), sdl.V("x")),
					sdl.P(sdl.V("b"), sdl.V("n1"), sdl.V("v1"), sdl.V("y")),
				},
			}},
			{Guard: sdl.Transact{
				Kind: sdl.Consensus,
				Query: sdl.Q(
					sdl.P(sdl.V("a"), sdl.W(), sdl.V("v1"), sdl.W()),
					sdl.P(sdl.V("b"), sdl.W(), sdl.V("v2"), sdl.W()),
				).Where(sdl.Le(sdl.X("v1"), sdl.X("v2"))),
				Actions: []sdl.Action{sdl.Exit{}},
			}},
		}}},
	}
}

func run(n int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Build a linked property list <id, name, value, next>.
	load := func(sys *sdl.System) {
		for i := 1; i <= n; i++ {
			next := sdl.Int(int64(i + 1))
			if i == n {
				next = nilAtom
			}
			sys.Store.Assert(sdl.Environment, sdl.NewTuple(
				sdl.Int(int64(i)),
				sdl.Atom(fmt.Sprintf("prop%d", (i*7)%n)),
				sdl.Int(int64((n-i)*10)),
				next,
			))
		}
	}
	target := fmt.Sprintf("prop%d", (n*7)%n) // property of the last node

	// Search: one process per hop.
	sys := sdl.New(sdl.Options{})
	load(sys)
	if err := sys.Define(searchDef()); err != nil {
		return err
	}
	start := time.Now()
	if err := sys.Run(ctx, "Search", sdl.Int(1), sdl.Atom(target)); err != nil {
		return err
	}
	fmt.Printf("Search(%q): %v, %d processes spawned\n",
		target, time.Since(start).Round(time.Microsecond), sys.Runtime.SpawnCount())
	printResult(sys, target)
	sys.Close()

	// Find: content-addressable, a single process.
	sys = sdl.New(sdl.Options{})
	load(sys)
	if err := sys.Define(findDef()); err != nil {
		return err
	}
	start = time.Now()
	if err := sys.Run(ctx, "Find", sdl.Atom(target)); err != nil {
		return err
	}
	fmt.Printf("Find(%q):   %v, %d process spawned\n",
		target, time.Since(start).Round(time.Microsecond), sys.Runtime.SpawnCount())
	printResult(sys, target)
	sys.Close()

	// Sort: adjacent-pair community, consensus termination.
	sys = sdl.New(sdl.Options{})
	defer sys.Close()
	load(sys)
	if err := sys.Define(sortDef()); err != nil {
		return err
	}
	start = time.Now()
	for i := 1; i < n; i++ {
		if _, err := sys.SpawnVals("Sort", sdl.Int(int64(i)), sdl.Int(int64(i+1))); err != nil {
			return err
		}
	}
	if err := sys.Runtime.WaitCtx(ctx); err != nil {
		return err
	}
	fmt.Printf("Sort: %v, %d consensus firing(s)\n",
		time.Since(start).Round(time.Microsecond), sys.Cons.Fires())
	vals := make([]int64, n)
	sys.Store.Snapshot(func(r sdl.Reader) {
		r.Each(func(inst sdl.Instance) bool {
			if inst.Tuple.Arity() == 4 {
				if id, ok := inst.Tuple.Field(0).AsInt(); ok && id >= 1 && id <= int64(n) {
					vals[id-1], _ = inst.Tuple.Field(2).AsInt()
				}
			}
			return true
		})
	})
	fmt.Println("sorted values:", vals)
	for i := 1; i < n; i++ {
		if vals[i-1] > vals[i] {
			return fmt.Errorf("not sorted at %d", i)
		}
	}
	return nil
}

func printResult(sys *sdl.System, prop string) {
	sys.Store.Snapshot(func(r sdl.Reader) {
		r.Scan(3, sdl.Atom("result"), true, func(_ sdl.TupleID, t sdl.Tuple) bool {
			fmt.Printf("  -> %s\n", t)
			return false
		})
	})
}
