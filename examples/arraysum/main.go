// Arraysum runs the paper's three §3.1 parallel-summation programs over
// the same array and compares them — the paper's first programming-style
// discussion, and experiment E1.
//
//	go run ./examples/arraysum [-n 256]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

func main() {
	n := flag.Int("n", 256, "array length (power of two)")
	flag.Parse()
	if err := run(*n); err != nil {
		fmt.Fprintln(os.Stderr, "arraysum:", err)
		os.Exit(1)
	}
}

func iv(n int64) sdl.Expr { return sdl.Lit(sdl.Int(n)) }

// sum3 is the replication one-liner the paper prefers:
//
//	≋ [ ∃ν,µ,α,β: <ν,α>!, <µ,β>! : ν ≠ µ → <µ, α+β> ]
func sum3() *sdl.Definition {
	return &sdl.Definition{
		Name: "Sum3",
		Body: []sdl.Stmt{sdl.Replicate{Branches: []sdl.Branch{{
			Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(
					sdl.R(sdl.V("n"), sdl.V("a")),
					sdl.R(sdl.V("m"), sdl.V("b")),
				).Where(sdl.Ne(sdl.X("n"), sdl.X("m"))),
				Asserts: []sdl.Pattern{sdl.P(sdl.V("m"), sdl.E(sdl.Add(sdl.X("a"), sdl.X("b"))))},
			},
		}}}},
	}
}

// sum2 is the asynchronous phase-tagged program.
func sum2() *sdl.Definition {
	return &sdl.Definition{
		Name:   "Sum2",
		Params: []string{"k", "j"},
		Body: []sdl.Stmt{sdl.Transact{
			Kind: sdl.Delayed,
			Query: sdl.Q(
				sdl.R(
					sdl.E(sdl.Sub(sdl.X("k"), sdl.Call("pow2", sdl.Sub(sdl.X("j"), iv(1))))),
					sdl.V("alpha"), sdl.V("j"),
				),
				sdl.R(sdl.V("k"), sdl.V("beta"), sdl.V("j")),
			),
			Asserts: []sdl.Pattern{sdl.P(
				sdl.V("k"),
				sdl.E(sdl.Add(sdl.X("alpha"), sdl.X("beta"))),
				sdl.E(sdl.Add(sdl.X("j"), iv(1))),
			)},
		}},
	}
}

// sum1 is the synchronous program: a consensus transaction is the phase
// barrier, exactly as on a SIMD machine.
func sum1() *sdl.Definition {
	phase := sdl.Mod(sdl.X("k"), sdl.Call("pow2", sdl.Add(sdl.X("j"), iv(1))))
	return &sdl.Definition{
		Name:   "Sum1",
		Params: []string{"k", "j"},
		Body: []sdl.Stmt{
			sdl.Transact{
				Kind: sdl.Delayed,
				Query: sdl.Q(
					sdl.R(
						sdl.E(sdl.Sub(sdl.X("k"), sdl.Call("pow2", sdl.Sub(sdl.X("j"), iv(1))))),
						sdl.V("alpha"),
					),
					sdl.R(sdl.V("k"), sdl.V("beta")),
				),
				Asserts: []sdl.Pattern{sdl.P(sdl.V("k"), sdl.E(sdl.Add(sdl.X("alpha"), sdl.X("beta"))))},
			},
			sdl.Select{Branches: []sdl.Branch{
				{Guard: sdl.Transact{
					Kind:  sdl.Consensus,
					Query: sdl.Query{Quant: sdl.Exists, Test: sdl.Eq(phase, iv(0))},
					Actions: []sdl.Action{sdl.Spawn{
						Type: "Sum1",
						Args: []sdl.Expr{sdl.X("k"), sdl.Add(sdl.X("j"), iv(1))},
					}},
				}},
				{Guard: sdl.Transact{
					Kind:  sdl.Consensus,
					Query: sdl.Query{Quant: sdl.Exists, Test: sdl.Ne(phase, iv(0))},
				}},
			}},
		},
	}
}

func run(n int) error {
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("n must be a power of two, got %d", n)
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	fmt.Printf("summing %d values, expected total %d\n\n", n, want)

	type variant struct {
		name  string
		setup func(sys *sdl.System) error
	}
	variants := []variant{
		{"Sum3 (replication — the paper's preferred form)", func(sys *sdl.System) error {
			for k, v := range values {
				sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Int(int64(k+1)), sdl.Int(v)))
			}
			if err := sys.Define(sum3()); err != nil {
				return err
			}
			_, err := sys.SpawnVals("Sum3")
			return err
		}},
		{"Sum2 (asynchronous, delayed transactions)", func(sys *sdl.System) error {
			for k, v := range values {
				sys.Store.Assert(sdl.Environment,
					sdl.NewTuple(sdl.Int(int64(k+1)), sdl.Int(v), sdl.Int(1)))
			}
			if err := sys.Define(sum2()); err != nil {
				return err
			}
			for j := int64(1); 1<<j <= int64(n); j++ {
				for k := int64(1); k <= int64(n); k++ {
					if k%(1<<j) == 0 {
						if _, err := sys.SpawnVals("Sum2", sdl.Int(k), sdl.Int(j)); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}},
		{"Sum1 (synchronous, consensus phase barriers)", func(sys *sdl.System) error {
			for k, v := range values {
				sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Int(int64(k+1)), sdl.Int(v)))
			}
			if err := sys.Define(sum1()); err != nil {
				return err
			}
			for k := int64(2); k <= int64(n); k += 2 {
				if _, err := sys.SpawnVals("Sum1", sdl.Int(k), sdl.Int(1)); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, v := range variants {
		sys := sdl.New(sdl.Options{})
		start := time.Now()
		if err := v.setup(sys); err != nil {
			sys.Close()
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if err := sys.Runtime.WaitCtx(ctx); err != nil {
			sys.Close()
			return fmt.Errorf("%s: %w", v.name, err)
		}
		elapsed := time.Since(start)

		var got int64
		sys.Store.Snapshot(func(r sdl.Reader) {
			r.Each(func(inst sdl.Instance) bool {
				got, _ = inst.Tuple.Field(1).AsInt()
				return false
			})
		})
		status := "OK"
		if got != want {
			status = fmt.Sprintf("WRONG (got %d)", got)
		}
		fmt.Printf("%-52s  %8v  sum=%d  %s\n", v.name, elapsed.Round(time.Microsecond), got, status)
		sys.Close()
	}
	return nil
}
