// Quickstart: the shared dataspace in five minutes.
//
// It builds a System, asserts tuples, runs the paper's §2.2 example
// transactions (membership test, immediate retract-and-assert, delayed
// transaction), restricts a process with the paper's §2.1 view, and prints
// the trace of everything that happened.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sys := sdl.New(sdl.Options{Trace: -1})
	defer sys.Close()

	// The dataspace is a multiset of tuples. <year, 87> is the paper's
	// running example.
	sys.Store.Assert(sdl.Environment,
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(85)),
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(87)),
		sdl.NewTuple(sdl.Atom("year"), sdl.Int(90)),
	)

	// Membership test: (year, 87) — succeeds or fails, no effect.
	res, err := sys.Immediate(sdl.Request{
		Proc:  1,
		View:  sdl.Universal(),
		Query: sdl.Q(sdl.P(sdl.C(sdl.Atom("year")), sdl.C(sdl.Int(87)))),
	})
	if err != nil {
		return err
	}
	fmt.Println("membership <year, 87>:", res.OK)

	// The paper's immediate transaction:
	//   ∃α: <year, α>! : α > 87 → let N = α, (found, α)
	res, err = sys.Immediate(sdl.Request{
		Proc: 1,
		View: sdl.Universal(),
		Query: sdl.Q(sdl.R(sdl.C(sdl.Atom("year")), sdl.V("a"))).
			Where(sdl.Gt(sdl.X("a"), sdl.Lit(sdl.Int(87)))),
		Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("found")), sdl.V("a"))},
	})
	if err != nil {
		return err
	}
	fmt.Printf("immediate: ok=%v bound α=%v retracted=%d asserted=%d\n",
		res.OK, res.Env["a"], len(res.Retracted), len(res.Asserted))

	// A delayed transaction blocks until the dataspace enables it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := sys.Delayed(context.Background(), sdl.Request{
			Proc: 2,
			View: sdl.Universal(),
			Query: sdl.Q(sdl.R(sdl.C(sdl.Atom("year")), sdl.V("a"))).
				Where(sdl.Gt(sdl.X("a"), sdl.Lit(sdl.Int(98)))),
			Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("new_year")))},
		})
		if err == nil && res.OK {
			fmt.Println("delayed: fired for year", res.Env["a"])
		}
	}()
	time.Sleep(50 * time.Millisecond) // it is blocked...
	sys.Store.Assert(sdl.Environment, sdl.NewTuple(sdl.Atom("year"), sdl.Int(99)))
	<-done

	// Views: the paper's §2.1 example hides years after 87.
	historic := sdl.NewView(
		sdl.Union(sdl.PatWhere(
			sdl.P(sdl.C(sdl.Atom("year")), sdl.V("x")),
			sdl.Le(sdl.X("x"), sdl.Lit(sdl.Int(87))),
		)),
		sdl.Everything(),
	)
	res, err = sys.Immediate(sdl.Request{
		Proc: 3,
		View: historic,
		Query: sdl.Q(sdl.P(sdl.C(sdl.Atom("year")), sdl.V("a"))).
			Where(sdl.Gt(sdl.X("a"), sdl.Lit(sdl.Int(87)))),
	})
	if err != nil {
		return err
	}
	fmt.Println("restricted view sees year > 87:", res.OK, "(the window hides them)")

	// Every tuple instance has an identity and an owner; the recorder saw
	// the whole history.
	fmt.Println("\ntrace:")
	return sys.Recorder.WriteText(os.Stdout)
}
