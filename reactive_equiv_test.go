package sdl

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sdl-lang/sdl/internal/refmodel"
)

// Reactive ablation equivalence: delta-driven wakeups are a pure
// scheduling optimization, so a confluent workload must reach the same
// final content multiset whether blocked guards re-evaluate against
// deltas (reactive on) or re-query on every covering commit (reactive
// off). The workload mixes both blocked-guard classes — delta-safe
// pure-positive waiters, whose irrelevant-commit wakeups the reactive
// path suppresses, and retract-pattern consumers, which always fall back
// to full re-queries — under churn that lands in the waiters' own index
// buckets without ever matching them.
func TestReactiveAblationEquivalence(t *testing.T) {
	const (
		waiters = 6
		tokens  = 8
		noise   = 5
	)
	run := func(t *testing.T, shards int, disable bool) map[uint64]int {
		sys := New(Options{Shards: shards, DisableReactive: disable})
		defer sys.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()

		var wg sync.WaitGroup
		// Delta-safe waiters: block on the constant tuple <job, i, 1> and
		// acknowledge it. The guard is pure-positive with a known lead, so
		// the reactive path compiles it to a delta filter.
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := sys.Delayed(ctx, Request{
					Proc:    ProcessID(i + 1),
					View:    Universal(),
					Query:   Q(P(C(Atom("job")), C(Int(int64(i))), C(Int(1)))),
					Asserts: []Pattern{P(C(Atom("ack")), C(Int(int64(i))))},
				})
				if err != nil || !res.OK {
					t.Errorf("waiter %d: res=%+v err=%v", i, res, err)
				}
			}(i)
		}
		// Retract consumers: each consumes one <tok, v> and converts it.
		// The retract pattern is not delta-safe, so these exercise the
		// full-re-query fallback under both settings.
		for i := 0; i < tokens; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := sys.Delayed(ctx, Request{
					Proc:    ProcessID(100 + i),
					View:    Universal(),
					Query:   Q(R(C(Atom("tok")), V("v"))),
					Asserts: []Pattern{P(C(Atom("did")), V("v"))},
				})
				if err != nil || !res.OK {
					t.Errorf("consumer %d: res=%+v err=%v", i, res, err)
				}
			}(i)
		}
		// Producer: noise first — same <job, ...> buckets the waiters watch,
		// but never matching their guards — then the releases and tokens.
		for i := 0; i < waiters; i++ {
			for k := 0; k < noise; k++ {
				sys.Store.Assert(Environment, NewTuple(Atom("job"), Int(int64(i)), Int(int64(-1-k))))
			}
		}
		for i := 0; i < waiters; i++ {
			sys.Store.Assert(Environment, NewTuple(Atom("job"), Int(int64(i)), Int(1)))
		}
		for i := 0; i < tokens; i++ {
			sys.Store.Assert(Environment, NewTuple(Atom("tok"), Int(int64(i))))
		}
		wg.Wait()
		return refmodel.MultisetOf(sys.Store)
	}
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			on := run(t, shards, false)
			off := run(t, shards, true)
			if !refmodel.SameMultiset(on, off) {
				t.Errorf("final multisets diverge: reactive %d distinct tuples, re-query %d",
					len(on), len(off))
			}
			// Sanity: the workload actually ran to completion — the noise
			// and release tuples survive, every waiter acked, and every
			// token was consumed and converted.
			want := waiters*noise + 2*waiters + tokens
			var total int
			for _, n := range on {
				total += n
			}
			if total != want {
				t.Errorf("reactive run finished with %d tuples, want %d", total, want)
			}
		})
	}
}
