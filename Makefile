GO ?= go

.PHONY: all build vet test race audit check bench sweep fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serializability-audit suite and metrics invariants, race-enabled.
audit:
	$(GO) test -race ./internal/metrics ./internal/refmodel ./internal/trace
	$(GO) test -race -run 'Metrics|WaiterDepth' .

# The verification gate: everything a commit must pass.
check: vet build race audit

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Regenerate bench_sweep.txt (full parameter sweeps; takes minutes).
sweep:
	$(GO) run ./cmd/sdlbench | tee bench_sweep.txt

# Run each fuzz target briefly — a smoke pass, not a campaign.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzLex -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzMatch -fuzztime=10s -run '^$$' ./internal/pattern

clean:
	$(GO) clean ./...
