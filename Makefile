GO ?= go

.PHONY: all build vet test race audit check bench bench-json bench-gate analyze-bench sweep fuzz-smoke analyze-smoke explore explore-smoke sched-test wal-test wal-smoke clean

all: check

build:
	$(GO) build ./...

# go vet over the Go sources, sdllint over the store's lock discipline,
# then sdlvet over the shipped SDL corpus — the examples must stay clean
# under every analyzer pass.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sdllint internal/dataspace
	$(GO) run ./cmd/sdlvet ./examples/sdl/*.sdl

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serializability-audit suite and metrics invariants, race-enabled.
audit:
	$(GO) test -race ./internal/metrics ./internal/refmodel ./internal/trace
	$(GO) test -race -run 'Metrics|WaiterDepth' .

# A short analyzer fuzz pass that rides the commit gate (the longer
# campaign lives in fuzz-smoke).
analyze-smoke:
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=5s -run '^$$' ./internal/analysis

# The full schedule-exploration campaign: 1000+ seeds across the fifteen
# corpus programs (15 programs x 84 seeds = 1260 runs), light faults,
# serializability-checked, with seeds split between the reactive wakeup
# path and its full re-query ablation. Any failure prints a replayable
# seed.
explore:
	$(GO) run ./cmd/sdlexplore -seeds 84

# A quick exploration pass that rides the commit gate (the full campaign
# lives in explore).
explore-smoke:
	$(GO) run ./cmd/sdlexplore -seeds 3

# The scheduler and exploration harness's own tests, race-enabled and run
# twice to catch cross-run state leakage (stale globals, leaked waiters).
sched-test:
	$(GO) test -race -count=2 ./internal/sched/...

# The full durability campaign: 100 SIGKILL-and-recover iterations per
# shard count plus a WAL decode fuzz pass. Any lost or duplicated
# acknowledged commit fails the run.
wal-test:
	SDL_WAL_KILL_ITERS=100 $(GO) test -count=1 -run TestKillRecover -timeout 20m ./internal/wal
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=30s -run '^$$' ./internal/wal

# A bounded kill-and-recover pass that rides the commit gate (the full
# campaign lives in wal-test).
wal-smoke:
	SDL_WAL_KILL_ITERS=2 $(GO) test -count=1 -run TestKillRecover ./internal/wal

# The verification gate: everything a commit must pass.
check: vet build race audit analyze-smoke sched-test explore-smoke wal-smoke

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Regenerate bench_sweep.txt (full parameter sweeps; takes minutes).
sweep:
	$(GO) run ./cmd/sdlbench | tee bench_sweep.txt

# Quick machine-readable sweep: writes BENCH_<shortrev>.json (the
# github-action-benchmark data.js shape) for the performance trajectory.
bench-json:
	$(GO) run ./cmd/sdlbench -quick -json -rev $$(git rev-parse --short HEAD)

# Regression gate: measure the working tree and diff it against the most
# recent committed BENCH_*.json (>30% on E1/E9/E12/E13/E14/E15/E16/E17 fails).
bench-gate:
	$(GO) run ./cmd/sdlbench -quick -json -rev gate -run E1,E9,E12,E13,E14,E15,E16,E17
	$(GO) run ./cmd/benchgate -new BENCH_gate.json BENCH_*.json
	rm -f BENCH_gate.json

# The refiner's admission trajectory: run E15 (fast-path admission % under
# view restriction, refined vs unrefined) and record it into
# BENCH_<shortrev>.json so committed runs chart how much of the workload
# the interprocedural analysis keeps on the key-latch path.
analyze-bench:
	$(GO) run ./cmd/sdlbench -quick -json -rev $$(git rev-parse --short HEAD) -run E15

# Run each fuzz target briefly — a smoke pass, not a campaign.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzLex -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzMatch -fuzztime=10s -run '^$$' ./internal/pattern
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=10s -run '^$$' ./internal/analysis
	$(GO) test -fuzz=FuzzDataflow -fuzztime=10s -run '^$$' ./internal/analysis/dataflow
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s -run '^$$' ./internal/wal
	$(GO) test -fuzz=FuzzWALRoundTrip -fuzztime=10s -run '^$$' ./internal/wal

clean:
	$(GO) clean ./...
