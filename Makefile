GO ?= go

.PHONY: all build vet test race audit check bench sweep fuzz-smoke analyze-smoke explore explore-smoke sched-test clean

all: check

build:
	$(GO) build ./...

# go vet over the Go sources, then sdlvet over the shipped SDL corpus —
# the examples must stay clean under every analyzer pass.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sdlvet ./examples/sdl/*.sdl

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serializability-audit suite and metrics invariants, race-enabled.
audit:
	$(GO) test -race ./internal/metrics ./internal/refmodel ./internal/trace
	$(GO) test -race -run 'Metrics|WaiterDepth' .

# A short analyzer fuzz pass that rides the commit gate (the longer
# campaign lives in fuzz-smoke).
analyze-smoke:
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=5s -run '^$$' ./internal/analysis

# The full schedule-exploration campaign: 1000+ seeds across the twelve
# corpus programs (12 programs x 84 seeds = 1008 runs), light faults,
# serializability-checked. Any failure prints a replayable seed.
explore:
	$(GO) run ./cmd/sdlexplore -seeds 84

# A quick exploration pass that rides the commit gate (the full campaign
# lives in explore).
explore-smoke:
	$(GO) run ./cmd/sdlexplore -seeds 3

# The scheduler and exploration harness's own tests, race-enabled and run
# twice to catch cross-run state leakage (stale globals, leaked waiters).
sched-test:
	$(GO) test -race -count=2 ./internal/sched/...

# The verification gate: everything a commit must pass.
check: vet build race audit analyze-smoke sched-test explore-smoke

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Regenerate bench_sweep.txt (full parameter sweeps; takes minutes).
sweep:
	$(GO) run ./cmd/sdlbench | tee bench_sweep.txt

# Run each fuzz target briefly — a smoke pass, not a campaign.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzLex -fuzztime=10s -run '^$$' ./internal/lang
	$(GO) test -fuzz=FuzzMatch -fuzztime=10s -run '^$$' ./internal/pattern
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=10s -run '^$$' ./internal/analysis

clean:
	$(GO) clean ./...
