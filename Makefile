GO ?= go

.PHONY: all build vet test race check bench sweep clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The verification gate: everything a commit must pass.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Regenerate bench_sweep.txt (full parameter sweeps; takes minutes).
sweep:
	$(GO) run ./cmd/sdlbench | tee bench_sweep.txt

clean:
	$(GO) clean ./...
