package sdl_test

// Full-system integration: one scenario exercising processes, views,
// delayed transactions, consensus, replication, tracing with replay, the
// watcher, and checkpointing — through the public API only.

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	sdl "github.com/sdl-lang/sdl"
)

func TestFullSystemScenario(t *testing.T) {
	sys := sdl.New(sdl.Options{Trace: -1})
	defer sys.Close()

	var samples atomic.Int32
	watcher := sdl.NewWatcher(sys.Store, time.Millisecond, func(r sdl.Reader) {
		samples.Add(1)
	})

	// Stage 1 — producers: each emits its value as <raw, i, v>.
	if err := sys.Define(&sdl.Definition{
		Name:   "Produce",
		Params: []string{"i", "v"},
		Body: []sdl.Stmt{sdl.Transact{
			Kind:    sdl.Immediate,
			Query:   sdl.Query{Quant: sdl.Exists},
			Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("raw")), sdl.V("i"), sdl.V("v"))},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	// Stage 2 — a replication worker squares every raw into <cooked, i, v²>,
	// counting down the shared <remaining, n> tuple in the same atomic
	// transaction. The counter is what lets stage 3 know production is
	// complete — without it the tallies' consensus could fire before any
	// cooking happened, the "premature termination" the paper warns the
	// community model about (and exactly what an earlier version of this
	// test did under unlucky scheduling).
	if err := sys.Define(&sdl.Definition{
		Name: "Cook",
		Body: []sdl.Stmt{sdl.Replicate{Branches: []sdl.Branch{{
			Guard: sdl.Transact{
				Kind: sdl.Immediate,
				Query: sdl.Q(
					sdl.R(sdl.C(sdl.Atom("raw")), sdl.V("i"), sdl.V("v")),
					sdl.R(sdl.C(sdl.Atom("remaining")), sdl.V("n")),
				),
				Asserts: []sdl.Pattern{
					sdl.P(sdl.C(sdl.Atom("cooked")), sdl.V("i"),
						sdl.E(sdl.Mul(sdl.X("v"), sdl.X("v")))),
					sdl.P(sdl.C(sdl.Atom("remaining")),
						sdl.E(sdl.Sub(sdl.X("n"), sdl.Lit(sdl.Int(1))))),
				},
			},
		}}}},
	}); err != nil {
		t.Fatal(err)
	}

	// Stage 3 — two tallies, each with a view over half the keyspace,
	// folding cooked tuples into a private sum; when production is done
	// (<remaining, 0>) and a tally's window holds no cooked tuples, it is
	// willing to synchronize. Their imports overlap on the <remaining>
	// tuple, so the two tallies are one consensus community and emit their
	// totals together.
	tallyView := func(parity int64) sdl.ViewFunc {
		return func(sdl.Env) sdl.View {
			imp := sdl.Union(
				sdl.PatWhere(
					sdl.P(sdl.C(sdl.Atom("cooked")), sdl.V("i"), sdl.W()),
					sdl.Eq(sdl.Mod(sdl.X("i"), sdl.Lit(sdl.Int(2))), sdl.Lit(sdl.Int(parity))),
				),
				sdl.Pat(sdl.P(sdl.C(sdl.Atom("sum")), sdl.C(sdl.Int(parity)), sdl.W())),
				sdl.Pat(sdl.P(sdl.C(sdl.Atom("remaining")), sdl.W())),
			)
			return sdl.NewView(imp, sdl.Everything())
		}
	}
	tallyDef := func(name string, parity int64) *sdl.Definition {
		return &sdl.Definition{
			Name: name,
			View: tallyView(parity),
			Body: []sdl.Stmt{sdl.Repeat{Branches: []sdl.Branch{
				{Guard: sdl.Transact{
					Kind: sdl.Immediate,
					Query: sdl.Q(
						sdl.R(sdl.C(sdl.Atom("cooked")), sdl.W(), sdl.V("v")),
						sdl.R(sdl.C(sdl.Atom("sum")), sdl.C(sdl.Int(parity)), sdl.V("s")),
					),
					Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("sum")), sdl.C(sdl.Int(parity)),
						sdl.E(sdl.Add(sdl.X("s"), sdl.X("v"))))},
				}},
				{Guard: sdl.Transact{
					Kind: sdl.Consensus,
					Query: sdl.Q(
						sdl.P(sdl.C(sdl.Atom("remaining")), sdl.C(sdl.Int(0))),
						sdl.N(sdl.C(sdl.Atom("cooked")), sdl.W(), sdl.W()),
						sdl.P(sdl.C(sdl.Atom("sum")), sdl.C(sdl.Int(parity)), sdl.V("s")),
					),
					Asserts: []sdl.Pattern{sdl.P(sdl.C(sdl.Atom("total")), sdl.V("s"))},
					Actions: []sdl.Action{sdl.Exit{}},
				}},
			}}},
		}
	}
	if err := sys.Define(tallyDef("TallyEven", 0), tallyDef("TallyOdd", 1)); err != nil {
		t.Fatal(err)
	}

	// Seed and launch everything concurrently.
	const n = 24
	sys.Store.Assert(sdl.Environment,
		sdl.NewTuple(sdl.Atom("sum"), sdl.Int(0), sdl.Int(0)),
		sdl.NewTuple(sdl.Atom("sum"), sdl.Int(1), sdl.Int(0)),
		sdl.NewTuple(sdl.Atom("remaining"), sdl.Int(n)),
	)
	var want0, want1 int64
	for i := int64(1); i <= n; i++ {
		if _, err := sys.SpawnVals("Produce", sdl.Int(i), sdl.Int(i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			want0 += i * i
		} else {
			want1 += i * i
		}
	}
	// A replication quiesces when no guard fires against a stable
	// configuration, so Cook must not start before production exists;
	// wait for every producer to commit. (In a long-running program the
	// Cook stage would instead be gated on a delayed transaction.)
	deadline := time.Now().Add(30 * time.Second)
	for {
		raws := 0
		sys.Store.Snapshot(func(r sdl.Reader) {
			r.Scan(3, sdl.Atom("raw"), true, func(sdl.TupleID, sdl.Tuple) bool {
				raws++
				return true
			})
		})
		if raws == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("producers stalled at %d/%d", raws, n)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sys.SpawnVals("Cook"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SpawnVals("TallyEven"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SpawnVals("TallyOdd"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sys.Runtime.WaitCtx(ctx); err != nil {
		t.Fatalf("society did not drain: %v\nsociety: %+v", err, sys.Runtime.Society())
	}
	for _, err := range sys.Runtime.Errors() {
		t.Errorf("process error: %v", err)
	}
	watcher.Stop()
	if samples.Load() == 0 {
		t.Error("watcher took no samples")
	}

	// Results: the two totals must partition the sum of squares.
	totals := sys.CollectInt(sdl.Atom("total"))
	if len(totals) != 2 {
		t.Fatalf("totals = %v", totals)
	}
	if totals[0]+totals[1] != want0+want1 {
		t.Errorf("totals = %v, want parts of %d", totals, want0+want1)
	}
	seen := map[int64]bool{totals[0]: true, totals[1]: true}
	if !seen[want0] || !seen[want1] {
		t.Errorf("totals = %v, want {%d, %d}", totals, want0, want1)
	}
	// Exactly one consensus fired (both tallies share the barrier tuple).
	if fires := sys.Cons.Fires(); fires != 1 {
		t.Errorf("consensus fires = %d, want 1", fires)
	}

	// Trace replay at head must equal the live store.
	replay := sys.Recorder.ReplayAt(sys.Store.Version())
	if len(replay) != sys.Store.Len() {
		t.Errorf("replay = %d instances, store = %d", len(replay), sys.Store.Len())
	}

	// Checkpoint round trip preserves everything.
	var buf bytes.Buffer
	if err := sys.Store.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := sdl.NewStore()
	if err := restored.ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != sys.Store.Len() || restored.Version() != sys.Store.Version() {
		t.Errorf("restored %d/%d, want %d/%d",
			restored.Len(), restored.Version(), sys.Store.Len(), sys.Store.Version())
	}
}
